package dram

import (
	"testing"
	"testing/quick"

	"bump/internal/mem"
)

func testConfig() Config {
	cfg := DefaultConfig()
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Error("zero channels must be invalid")
	}
	bad = DefaultConfig()
	bad.RowBytes = 1000
	if bad.Validate() == nil {
		t.Error("non-power-of-two row must be invalid")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New must panic on invalid config")
			}
		}()
		New(bad)
	}()
}

func TestBanksCount(t *testing.T) {
	d := New(testConfig())
	if d.Banks() != 2*4*8 {
		t.Errorf("Banks = %d, want 64", d.Banks())
	}
}

func TestFirstAccessActivates(t *testing.T) {
	d := New(testConfig())
	loc := Loc{Channel: 0, Rank: 0, Bank: 0, Row: 5}
	done, outcome := d.Access(mem.MemRead, loc, 0, false)
	if outcome != RowClosed {
		t.Fatalf("outcome = %v, want closed", outcome)
	}
	t1600 := DDR3_1600()
	// ACT at 0, RD at tRCD, data at tRCD+tCAS..+tBurst.
	want := t1600.TRCD + t1600.TCAS + t1600.TBurst
	if done != want {
		t.Errorf("done = %d, want %d", done, want)
	}
	if s := d.Stats(); s.Activations != 1 || s.ReadBursts != 1 || s.RowClosed != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRowHitIsFast(t *testing.T) {
	d := New(testConfig())
	loc := Loc{Row: 5}
	first, _ := d.Access(mem.MemRead, loc, 0, false)
	done, outcome := d.Access(mem.MemRead, loc, first, false)
	if outcome != RowHit {
		t.Fatalf("outcome = %v, want hit", outcome)
	}
	t1600 := DDR3_1600()
	// Row hit: just CAS latency + burst from request time.
	if done != first+t1600.TCAS+t1600.TBurst {
		t.Errorf("done = %d, want %d", done, first+t1600.TCAS+t1600.TBurst)
	}
	if d.Stats().HitRatio() != 0.5 {
		t.Errorf("hit ratio = %v", d.Stats().HitRatio())
	}
}

func TestRowConflictPays_PRE_ACT(t *testing.T) {
	d := New(testConfig())
	tm := DDR3_1600()
	d.Access(mem.MemRead, Loc{Row: 1}, 0, false)
	// Access another row in the same bank long after all constraints.
	now := int64(1000)
	done, outcome := d.Access(mem.MemRead, Loc{Row: 2}, now, false)
	if outcome != RowConflict {
		t.Fatalf("outcome = %v, want conflict", outcome)
	}
	want := now + tm.TRP + tm.TRCD + tm.TCAS + tm.TBurst
	if done != want {
		t.Errorf("done = %d, want %d (PRE+ACT+RD)", done, want)
	}
}

func TestAutoPrechargeCloses(t *testing.T) {
	d := New(testConfig())
	loc := Loc{Row: 7}
	d.Access(mem.MemRead, loc, 0, true)
	if _, open := d.OpenRow(loc); open {
		t.Fatal("bank must be closed after auto-precharge")
	}
	_, outcome := d.Access(mem.MemRead, loc, 1000, true)
	if outcome != RowClosed {
		t.Errorf("second access outcome = %v, want closed", outcome)
	}
}

func TestTRASEnforcedBeforeConflictPrecharge(t *testing.T) {
	d := New(testConfig())
	tm := DDR3_1600()
	d.Access(mem.MemRead, Loc{Row: 1}, 0, false) // ACT at 0
	// Immediately conflict: PRE cannot issue before tRAS.
	done, _ := d.Access(mem.MemRead, Loc{Row: 2}, 1, false)
	minDone := tm.TRAS + tm.TRP + tm.TRCD + tm.TCAS + tm.TBurst
	if done < minDone {
		t.Errorf("done = %d violates tRAS floor %d", done, minDone)
	}
}

func TestTFAWLimitsActivationBursts(t *testing.T) {
	d := New(testConfig())
	tm := DDR3_1600()
	// Five activations to five banks of the same rank at time 0.
	var acts [5]int64
	for i := 0; i < 5; i++ {
		done, _ := d.Access(mem.MemRead, Loc{Bank: i, Row: 1}, 0, false)
		acts[i] = done - tm.TRCD - tm.TCAS - tm.TBurst // recover ACT time lower bound
		_ = acts
		_ = done
	}
	// The 5th ACT must be >= first ACT + tFAW. First ACT was at 0, so the
	// 5th access's completion must be at least tFAW + tRCD + tCAS + tBurst.
	d2 := New(testConfig())
	var last int64
	for i := 0; i < 5; i++ {
		last, _ = d2.Access(mem.MemRead, Loc{Bank: i, Row: 1}, 0, false)
	}
	if min := tm.TFAW + tm.TRCD + tm.TCAS + tm.TBurst; last < min {
		t.Errorf("5th activation finished at %d, violating tFAW floor %d", last, min)
	}
}

func TestDataBusSerialisesBursts(t *testing.T) {
	d := New(testConfig())
	tm := DDR3_1600()
	// Two row hits to different banks, same channel, same instant: data
	// bursts must not overlap.
	d.Access(mem.MemRead, Loc{Bank: 0, Row: 1}, 0, false)
	d.Access(mem.MemRead, Loc{Bank: 1, Row: 1}, 0, false)
	done1, _ := d.Access(mem.MemRead, Loc{Bank: 0, Row: 1}, 100, false)
	done2, _ := d.Access(mem.MemRead, Loc{Bank: 1, Row: 1}, 100, false)
	if done2 < done1+tm.TBurst {
		t.Errorf("bursts overlap: %d then %d", done1, done2)
	}
	// Different channels do not contend.
	dA := New(testConfig())
	dA.Access(mem.MemRead, Loc{Channel: 0, Row: 1}, 0, false)
	dA.Access(mem.MemRead, Loc{Channel: 1, Row: 1}, 0, false)
	a, _ := dA.Access(mem.MemRead, Loc{Channel: 0, Row: 1}, 100, false)
	b, _ := dA.Access(mem.MemRead, Loc{Channel: 1, Row: 1}, 100, false)
	if a != b {
		t.Errorf("independent channels should finish together: %d vs %d", a, b)
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	d := New(testConfig())
	tm := DDR3_1600()
	d.Access(mem.MemWrite, Loc{Row: 3}, 0, false) // opens row, write burst
	// Read right after the write on the same rank: must respect tWTR
	// after write data end.
	wrEnd := tm.TRCD + tm.TCWL + tm.TBurst
	done, outcome := d.Access(mem.MemRead, Loc{Row: 3}, 0, false)
	if outcome != RowHit {
		t.Fatalf("outcome = %v", outcome)
	}
	if min := wrEnd + tm.TWTR + tm.TCAS + tm.TBurst; done < min {
		t.Errorf("read after write done=%d, violating tWTR floor %d", done, min)
	}
}

func TestOutcomeIsPure(t *testing.T) {
	d := New(testConfig())
	loc := Loc{Row: 9}
	if d.Outcome(loc) != RowClosed {
		t.Error("fresh bank must be closed")
	}
	before := d.Stats()
	d.Outcome(loc)
	if d.Stats() != before {
		t.Error("Outcome must not mutate stats")
	}
	d.Access(mem.MemRead, loc, 0, false)
	if d.Outcome(loc) != RowHit {
		t.Error("open row must report hit")
	}
	if d.Outcome(Loc{Row: 10}) != RowConflict {
		t.Error("other row must report conflict")
	}
}

func TestPrechargeAll(t *testing.T) {
	d := New(testConfig())
	d.Access(mem.MemRead, Loc{Row: 1}, 0, false)
	d.Access(mem.MemRead, Loc{Channel: 1, Rank: 2, Bank: 3, Row: 4}, 0, false)
	d.PrechargeAll(1000)
	if _, open := d.OpenRow(Loc{Row: 1}); open {
		t.Error("bank 0 still open")
	}
	if _, open := d.OpenRow(Loc{Channel: 1, Rank: 2, Bank: 3}); open {
		t.Error("bank on channel 1 still open")
	}
}

func TestRowOutcomeString(t *testing.T) {
	if RowHit.String() != "hit" || RowClosed.String() != "closed" || RowConflict.String() != "conflict" {
		t.Error("RowOutcome strings")
	}
}

// Property: time never runs backwards — for any access sequence with
// non-decreasing arrival times, completion is at least arrival + the
// minimum burst latency, and stats counters equal the access count.
func TestMonotonicCompletionProperty(t *testing.T) {
	tm := DDR3_1600()
	f := func(raw []uint32) bool {
		d := New(testConfig())
		now := int64(0)
		var accesses uint64
		for _, r := range raw {
			loc := Loc{
				Channel: int(r) % 2,
				Rank:    int(r>>1) % 4,
				Bank:    int(r>>3) % 8,
				Row:     uint64(r>>6) % 128,
			}
			op := mem.MemRead
			if r&(1<<30) != 0 {
				op = mem.MemWrite
			}
			now += int64(r % 7)
			done, _ := d.Access(op, loc, now, r&(1<<31) != 0)
			minLat := tm.TCAS
			if op == mem.MemWrite {
				minLat = tm.TCWL
			}
			if done < now+minLat+tm.TBurst {
				return false
			}
			accesses++
		}
		s := d.Stats()
		if s.Accesses() != accesses {
			return false
		}
		return s.RowHits+s.RowClosed+s.RowConflicts == accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
