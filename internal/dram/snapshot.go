package dram

import (
	"fmt"

	"bump/internal/snapshot"
)

// SnapshotTo serializes the device state: per-bank row-buffer and timing
// readiness, per-rank activation/refresh history, per-channel data-bus
// occupancy, and the event counters.
func (d *DRAM) SnapshotTo(w *snapshot.Writer) {
	w.Section("dram")
	w.U32(uint32(d.cfg.Channels))
	w.U32(uint32(d.cfg.RanksPerChannel))
	w.U32(uint32(d.cfg.BanksPerRank))
	w.Any(d.stats)
	for c := range d.channels {
		ch := &d.channels[c]
		w.I64(ch.dataFree)
		for i := range ch.banks {
			b := &ch.banks[i]
			w.Bool(b.open)
			w.U64(b.row)
			w.I64(b.actReady)
			w.I64(b.rwReady)
			w.I64(b.preReady)
		}
		for i := range ch.ranks {
			rk := &ch.ranks[i]
			w.I64(rk.lastAct)
			for _, t := range rk.actTimes {
				w.I64(t)
			}
			w.U32(uint32(rk.actIdx))
			w.I64(rk.wrDataEnd)
			w.I64(rk.refDone)
			w.I64(rk.refCount)
		}
	}
}

// RestoreFrom replaces the device state with a snapshot's. The device
// must have the organisation the snapshot was taken from.
func (d *DRAM) RestoreFrom(r *snapshot.Reader) error {
	r.Section("dram")
	chs, ranks, banks := r.U32(), r.U32(), r.U32()
	if r.Err() != nil {
		return r.Err()
	}
	if int(chs) != d.cfg.Channels || int(ranks) != d.cfg.RanksPerChannel || int(banks) != d.cfg.BanksPerRank {
		return fmt.Errorf("dram: snapshot organisation %d/%d/%d, device is %d/%d/%d",
			chs, ranks, banks, d.cfg.Channels, d.cfg.RanksPerChannel, d.cfg.BanksPerRank)
	}
	r.AnyInto(&d.stats)
	for c := range d.channels {
		ch := &d.channels[c]
		ch.dataFree = r.I64()
		for i := range ch.banks {
			b := &ch.banks[i]
			b.open = r.Bool()
			b.row = r.U64()
			b.actReady = r.I64()
			b.rwReady = r.I64()
			b.preReady = r.I64()
		}
		for i := range ch.ranks {
			rk := &ch.ranks[i]
			rk.lastAct = r.I64()
			for j := range rk.actTimes {
				rk.actTimes[j] = r.I64()
			}
			idx := r.U32()
			if r.Err() != nil {
				return r.Err()
			}
			if int(idx) >= len(rk.actTimes) {
				return fmt.Errorf("dram: tFAW index %d out of range", idx)
			}
			rk.actIdx = int(idx)
			rk.wrDataEnd = r.I64()
			rk.refDone = r.I64()
			rk.refCount = r.I64()
		}
	}
	return r.Err()
}
