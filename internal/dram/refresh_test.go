package dram

import (
	"testing"

	"bump/internal/mem"
)

func TestRefreshDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TREFI = 0
	d := New(cfg)
	d.Access(mem.MemRead, Loc{Row: 1}, 100_000, false)
	if d.Stats().Refreshes != 0 {
		t.Error("refresh disabled must never refresh")
	}
}

func TestRefreshClosesOpenRows(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	loc := Loc{Row: 5}
	d.Access(mem.MemRead, loc, 0, false)
	if _, open := d.OpenRow(loc); !open {
		t.Fatal("row should be open")
	}
	// Next access arrives after a refresh interval: the refresh must
	// have closed the row, so the access re-activates.
	_, outcome := d.Access(mem.MemRead, loc, cfg.TREFI+1, false)
	if outcome != RowClosed {
		t.Errorf("outcome after refresh = %v, want closed", outcome)
	}
	if d.Stats().Refreshes != 1 {
		t.Errorf("refreshes = %d, want 1", d.Stats().Refreshes)
	}
}

func TestRefreshBlocksBankForTRFC(t *testing.T) {
	cfg := DefaultConfig()
	tm := cfg.Timing
	d := New(cfg)
	// Arrive exactly when a refresh is due on an idle rank: the
	// activation must wait TRFC.
	now := cfg.TREFI
	done, outcome := d.Access(mem.MemRead, Loc{Row: 1}, now, false)
	if outcome != RowClosed {
		t.Fatalf("outcome = %v", outcome)
	}
	min := now + cfg.TRFC + tm.TRCD + tm.TCAS + tm.TBurst
	if done < min {
		t.Errorf("done = %d, want >= %d (tRFC honoured)", done, min)
	}
}

func TestRefreshCatchUpCoalesces(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	// An access after 10 intervals coalesces the missed refreshes (the
	// counter advances) without replaying each one.
	d.Access(mem.MemRead, Loc{Row: 1}, 10*cfg.TREFI+5, false)
	if got := d.Stats().Refreshes; got != 10 {
		t.Errorf("refreshes = %d, want 10 (coalesced catch-up)", got)
	}
	// The next interval triggers exactly one more.
	d.Access(mem.MemRead, Loc{Row: 1}, 11*cfg.TREFI+5, false)
	if got := d.Stats().Refreshes; got != 11 {
		t.Errorf("refreshes = %d, want 11", got)
	}
}

func TestRefreshPerRank(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	now := cfg.TREFI + 1
	d.Access(mem.MemRead, Loc{Rank: 0, Row: 1}, now, false)
	d.Access(mem.MemRead, Loc{Rank: 1, Row: 1}, now, false)
	// Each touched rank refreshes independently.
	if got := d.Stats().Refreshes; got != 2 {
		t.Errorf("refreshes = %d, want 2 (one per touched rank)", got)
	}
}
