package bump_test

import (
	"fmt"

	"bump"
)

// The predictor can be embedded standalone in any cache model: feed it
// LLC demand accesses and evictions; it reports bulk-transfer decisions.
func ExampleNewPredictor() {
	p := bump.NewPredictor(bump.DefaultPredictorConfig())

	// One generation of a dense 1KB object, triggered by PC 0x401000.
	base := bump.Addr(0x10000)
	for i := 0; i < 16; i++ {
		p.Touch(0x401000, (base + bump.Addr(i*64)).Block(), false)
	}
	p.Evict(base.Block(), false) // generation ends: high density learned

	fmt.Println("stream on trained PC:", p.ReadMiss(0x401000, bump.Addr(0x80000).Block()))
	fmt.Println("stream on unknown PC:", p.ReadMiss(0x999000, bump.Addr(0xC0400).Block()))
	// Output:
	// stream on trained PC: true
	// stream on unknown PC: false
}

// Full-system runs compare memory-system mechanisms on a workload.
func ExampleRun() {
	cfg := bump.DefaultConfig(bump.MechBuMP, bump.WebSearch())
	cfg.WarmupCycles = 200_000
	cfg.MeasureCycles = 300_000
	res, err := bump.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("mechanism:", res.Mechanism)
	fmt.Println("workload:", res.Workload)
	fmt.Println("has traffic:", res.MemoryAccesses() > 0)
	// Output:
	// mechanism: bump
	// workload: web-search
	// has traffic: true
}
