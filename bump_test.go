package bump

import (
	"testing"
)

// fastRun returns a short-window config for API tests.
func fastRun(m Mechanism, w Workload) Config {
	cfg := DefaultConfig(m, w)
	cfg.LLCBytes = 1 << 20
	cfg.WarmupCycles = 250_000
	cfg.MeasureCycles = 500_000
	return cfg
}

func TestPublicRun(t *testing.T) {
	res, err := Run(fastRun(MechBuMP, WebSearch()))
	if err != nil {
		t.Fatal(err)
	}
	if res.RowHitRatio() <= 0 || res.IPC() <= 0 {
		t.Errorf("empty result: hit=%v ipc=%v", res.RowHitRatio(), res.IPC())
	}
	if res.Mechanism != MechBuMP || res.Workload != "web-search" {
		t.Errorf("identity: %v %s", res.Mechanism, res.Workload)
	}
}

func TestPublicRunRejectsBadConfig(t *testing.T) {
	cfg := fastRun(MechBuMP, WebSearch())
	cfg.Cores = -1
	if _, err := Run(cfg); err == nil {
		t.Error("invalid config must error")
	}
}

func TestWorkloadCatalog(t *testing.T) {
	if len(Workloads()) != 6 {
		t.Fatalf("expected 6 workloads")
	}
	if w, ok := WorkloadByName("media-streaming"); !ok || w.Name != "media-streaming" {
		t.Error("WorkloadByName failed")
	}
	if _, ok := WorkloadByName("nope"); ok {
		t.Error("unknown workload resolved")
	}
	if len(Mechanisms()) != 7 {
		t.Error("expected 7 mechanisms")
	}
}

func TestStandalonePredictor(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	// Train: a scan touches 12 blocks of region 5, triggered by PC
	// 0x1000 at offset 0, then the region sees an eviction.
	base := Addr(5 * 1024)
	for i := 0; i < 12; i++ {
		p.Touch(0x1000, (base + Addr(i*64)).Block(), false)
	}
	p.Evict(base.Block(), false)
	// Predict: a miss by the same instruction at a new region's start
	// must request bulk streaming.
	if !p.ReadMiss(0x1000, Addr(99*1024).Block()) {
		t.Error("trained predictor must stream")
	}
	if p.ReadMiss(0x2000, Addr(77*1024).Block()) {
		t.Error("unknown PC must not stream")
	}
	st := p.Stats()
	if st.HighDensityRegions != 1 || st.BHTHits != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestFiguresHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke is slow")
	}
	f := NewFigures(FigureOptions{
		Seed:          3,
		WarmupCycles:  200_000,
		MeasureCycles: 300_000,
		Workloads:     []Workload{WebSearch()},
	})
	if got := f.Fig2().String(); got == "" {
		t.Error("Fig2 empty")
	}
	if got := f.Table4().String(); got == "" {
		t.Error("Table4 empty")
	}
}
