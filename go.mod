module bump

go 1.24
