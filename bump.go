// Package bump is a from-scratch reproduction of "BuMP: Bulk Memory
// Access Prediction and Streaming" (Volos, Picorel, Falsafi, Grot —
// MICRO 2014, DOI 10.1109/MICRO.2014.44).
//
// The package exposes three layers:
//
//   - The BuMP predictor itself (NewPredictor): the paper's region
//     density tracking table (RDTT), bulk history table (BHT) and dirty
//     region table (DRT), usable standalone on any LLC event stream.
//   - A full-system simulator (Run): a 16-core lean-core CMP with
//     per-core L1-D caches, a shared LLC, a crossbar NOC, FR-FCFS DDR3
//     memory controllers and an event-based energy model, replaying
//     synthetic server workloads modelled on the paper's CloudSuite
//     characterisation.
//   - The evaluation harness (NewFigures): regenerates every table and
//     figure of the paper's evaluation section as text tables.
//
// Quick start:
//
//	res, err := bump.Run(bump.DefaultConfig(bump.MechBuMP, bump.WebSearch()))
//	if err != nil { ... }
//	fmt.Printf("row-buffer hit ratio: %.1f%%\n", 100*res.RowHitRatio())
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory.
package bump

import (
	"bump/internal/core"
	"bump/internal/figures"
	"bump/internal/mem"
	"bump/internal/scenario"
	"bump/internal/sim"
	"bump/internal/stats"
	"bump/internal/workload"
)

// ---- Full-system simulation -------------------------------------------

// Mechanism selects the memory system under evaluation.
type Mechanism = sim.Mechanism

// The evaluated systems (the bars of Figs. 2, 9, 10 and 13).
const (
	// MechBaseClose is the close-row, block-interleaved baseline with a
	// stride prefetcher.
	MechBaseClose = sim.BaseClose
	// MechBaseOpen is the open-row, region-interleaved baseline with a
	// stride prefetcher (BuMP's memory controller, no predictor).
	MechBaseOpen = sim.BaseOpen
	// MechSMS adds Spatial Memory Streaming next to the LLC.
	MechSMS = sim.SMSOnly
	// MechVWQ adds a Virtual Write Queue-style eager writeback.
	MechVWQ = sim.VWQOnly
	// MechSMSVWQ combines SMS and VWQ.
	MechSMSVWQ = sim.SMSVWQ
	// MechFullRegion bulk-transfers every region without prediction.
	MechFullRegion = sim.FullRegion
	// MechBuMP is the paper's mechanism.
	MechBuMP = sim.BuMP
)

// Mechanisms lists all evaluated systems in figure order.
func Mechanisms() []Mechanism { return sim.Mechanisms() }

// Config is the full-system configuration (Table II defaults via
// DefaultConfig).
type Config = sim.Config

// Result holds one run's measurement-window statistics and derived
// metrics (row-buffer hit ratio, IPC, energy breakdown, coverage).
type Result = sim.Result

// DefaultConfig returns the paper's 16-core system (Table II) for the
// given mechanism and workload.
func DefaultConfig(m Mechanism, w Workload) Config { return sim.DefaultConfig(m, w) }

// Run simulates one configuration and returns its measurement-window
// result.
func Run(cfg Config) (Result, error) { return sim.RunOne(cfg) }

// RunSeeds runs the configuration once per seed, in parallel, for
// SMARTS-style multi-sample measurement.
func RunSeeds(cfg Config, seeds []int64) ([]Result, error) { return sim.RunSeeds(cfg, seeds) }

// Aggregate summarises multi-seed results with 95% confidence
// half-widths.
type Aggregate = sim.Aggregate

// AggregateResults computes the multi-seed summary.
func AggregateResults(rs []Result) Aggregate { return sim.AggregateResults(rs) }

// ---- Workloads ----------------------------------------------------------

// Workload parameterises a synthetic server workload (see
// internal/workload for the model).
type Workload = workload.Params

// The six evaluated server applications (Section V.A).
var (
	DataServing     = workload.DataServing
	MediaStreaming  = workload.MediaStreaming
	OnlineAnalytics = workload.OnlineAnalytics
	SoftwareTesting = workload.SoftwareTesting
	WebSearch       = workload.WebSearch
	WebServing      = workload.WebServing
)

// Workloads returns the six evaluated workloads in the paper's order.
func Workloads() []Workload { return workload.All() }

// WorkloadByName resolves a workload preset by its name (e.g.
// "web-search").
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// ---- Scenarios ----------------------------------------------------------

// Scenario is a declarative multi-phase, multi-tenant workload
// composition: per-tenant core ranges, each running an ordered timeline
// of preset-based phases with optional load-shift ramps (see
// internal/scenario for the spec and JSON file format).
type Scenario = scenario.Spec

// Scenarios returns the built-in scenario library names (consolidated,
// diurnal-shift, phase-swap, bursty-writer).
func Scenarios() []string { return scenario.Library() }

// ScenarioByName builds a built-in (or registered) scenario for the
// given core count.
func ScenarioByName(name string, cores int) (Scenario, bool) { return scenario.ByName(name, cores) }

// LoadScenario reads a scenario spec from its JSON file format.
func LoadScenario(path string) (Scenario, error) { return scenario.Load(path) }

// DefaultScenarioConfig returns the paper's 16-core system (Table II)
// driven by a scenario instead of a stationary workload.
func DefaultScenarioConfig(m Mechanism, sc Scenario) Config {
	return sim.DefaultScenarioConfig(m, sc)
}

// ---- Standalone predictor -----------------------------------------------

// Predictor is the BuMP engine: feed it the LLC access/eviction stream
// via Touch/ReadMiss/Evict and it reports when to stream a region from
// memory or write one back in bulk. See the examples/predictor program.
type Predictor = core.Predictor

// PredictorConfig sizes the predictor (Section IV.D: ~14KB total at the
// defaults).
type PredictorConfig = core.Config

// PredictorStats are the predictor's event counters.
type PredictorStats = core.Stats

// DefaultPredictorConfig returns the paper's configuration: 1KB regions,
// 8-block (50%) density threshold, 256+256-entry RDTT, 1024-entry BHT and
// DRT, all 16-way set-associative.
func DefaultPredictorConfig() PredictorConfig { return core.DefaultConfig() }

// NewPredictor builds a predictor; it panics on an invalid configuration
// (validate with PredictorConfig.Validate first if unsure).
func NewPredictor(cfg PredictorConfig) *Predictor { return core.New(cfg) }

// Address types for feeding the standalone predictor.
type (
	// Addr is a physical byte address.
	Addr = mem.Addr
	// BlockAddr is a 64-byte-block address (Addr >> 6).
	BlockAddr = mem.BlockAddr
	// PC is the address of the instruction triggering an access.
	PC = mem.PC
)

// ---- Evaluation harness ---------------------------------------------------

// Figures regenerates the paper's tables and figures; obtain one with
// NewFigures.
type Figures = figures.Runner

// FigureOptions parameterise the harness (zero values give the paper's
// full six-workload configuration at default simulation windows).
type FigureOptions = figures.Options

// Table is a rendered, fixed-width text table.
type Table = stats.Table

// NewFigures builds the evaluation harness.
func NewFigures(opts FigureOptions) *Figures { return figures.NewRunner(opts) }
