// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each benchmark runs the corresponding experiment
// (simulations are cached across benchmarks, so a full -bench=. pass runs
// each distinct configuration once), reports the headline numbers as
// custom metrics, and logs the full text table under -v.
//
// Run everything:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Paper-vs-measured values for every experiment are recorded in
// EXPERIMENTS.md.
package bump

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"bump/internal/sim"
	"bump/internal/stats"
)

var (
	benchRunnerOnce sync.Once
	benchRunner     *Figures
)

// benchFigures returns the shared, cached evaluation harness used by all
// benchmarks: full six-workload suite at moderately sized windows.
func benchFigures() *Figures {
	benchRunnerOnce.Do(func() {
		benchRunner = NewFigures(FigureOptions{
			Seed:          1,
			WarmupCycles:  700_000,
			MeasureCycles: 1_500_000,
		})
	})
	return benchRunner
}

func logTable(b *testing.B, t *stats.Table) {
	b.Helper()
	b.Logf("\n%s", t)
}

// BenchmarkFig01EnergyBreakdown regenerates Figure 1: server energy
// breakdown (cores/LLC/NOC/MC/memory; memory split into activation,
// burst&IO and background) on the baseline system.
func BenchmarkFig01EnergyBreakdown(b *testing.B) {
	f := benchFigures()
	for i := 0; i < b.N; i++ {
		t := f.Fig1()
		logTable(b, t)
	}
	// Headline: memory's share of server energy (paper: 48-62%).
	var mems []float64
	for _, w := range Workloads() {
		res := f.Run(MechBaseOpen, w)
		mems = append(mems, res.Energy.Memory()/res.Energy.Total())
	}
	b.ReportMetric(100*stats.Mean(mems), "%memEnergy")
}

// BenchmarkFig02RowBufferHitRatio regenerates Figure 2: row-buffer hit
// ratios of Base, SMS, VWQ and Ideal.
func BenchmarkFig02RowBufferHitRatio(b *testing.B) {
	f := benchFigures()
	for i := 0; i < b.N; i++ {
		logTable(b, f.Fig2())
	}
	var base, ideal []float64
	for _, w := range Workloads() {
		r := f.Run(MechBaseOpen, w)
		base = append(base, r.RowHitRatio())
		ideal = append(ideal, r.Profile.IdealHitRatio())
	}
	b.ReportMetric(100*stats.Mean(base), "%baseHit")
	b.ReportMetric(100*stats.Mean(ideal), "%idealHit")
}

// BenchmarkFig03AccessMix regenerates Figure 3: DRAM accesses broken into
// load-triggered reads, store-triggered reads and writes.
func BenchmarkFig03AccessMix(b *testing.B) {
	f := benchFigures()
	for i := 0; i < b.N; i++ {
		logTable(b, f.Fig3())
	}
	var writes []float64
	for _, w := range Workloads() {
		p := f.Run(MechBaseOpen, w).Profile
		writes = append(writes, stats.Ratio(p.Writes, p.Accesses()))
	}
	// Paper: writes are 21-38% of DRAM traffic.
	b.ReportMetric(100*stats.Mean(writes), "%writes")
}

// BenchmarkFig05RegionDensity regenerates Figure 5: region access density
// (1KB regions) for reads and writes.
func BenchmarkFig05RegionDensity(b *testing.B) {
	f := benchFigures()
	for i := 0; i < b.N; i++ {
		logTable(b, f.Fig5())
	}
	var hr, hw []float64
	for _, w := range Workloads() {
		p := f.Run(MechBaseOpen, w).Profile
		hr = append(hr, p.HighDensityReadFraction())
		hw = append(hw, p.HighDensityWriteFraction())
	}
	// Paper: 57-75% of reads, 62-86% of writes are high-density.
	b.ReportMetric(100*stats.Mean(hr), "%highReads")
	b.ReportMetric(100*stats.Mean(hw), "%highWrites")
}

// BenchmarkTable1LateWrites regenerates Table I: blocks modified after
// the region's first dirty eviction (paper: 3-11%).
func BenchmarkTable1LateWrites(b *testing.B) {
	f := benchFigures()
	for i := 0; i < b.N; i++ {
		logTable(b, f.Table1())
	}
	var late []float64
	for _, w := range Workloads() {
		late = append(late, f.Run(MechBaseOpen, w).Profile.LateWriteFraction())
	}
	b.ReportMetric(100*stats.Mean(late), "%lateWrites")
}

// BenchmarkFig08Coverage regenerates Figure 8: predicted reads/writes and
// overfetch for Full-region and BuMP.
func BenchmarkFig08Coverage(b *testing.B) {
	f := benchFigures()
	for i := 0; i < b.N; i++ {
		logTable(b, f.Fig8())
	}
	var cov, ovf, wcov, frOvf []float64
	for _, w := range Workloads() {
		r := f.Run(MechBuMP, w)
		cov = append(cov, r.ReadCoverage())
		ovf = append(ovf, r.ReadOverfetch())
		wcov = append(wcov, r.WriteCoverage())
		frOvf = append(frOvf, f.Run(MechFullRegion, w).ReadOverfetch())
	}
	// Paper: BuMP ~50% read coverage at 5-22% overfetch, 63% write
	// coverage; Full-region overfetch averages 4.3x.
	b.ReportMetric(100*stats.Mean(cov), "%readCov")
	b.ReportMetric(100*stats.Mean(ovf), "%overfetch")
	b.ReportMetric(100*stats.Mean(wcov), "%writeCov")
	b.ReportMetric(stats.Mean(frOvf), "xFullRegionOverfetch")
}

// BenchmarkFig09EnergyPerAccess regenerates Figure 9: memory energy per
// access for Base-close, Base-open, Full-region and BuMP.
func BenchmarkFig09EnergyPerAccess(b *testing.B) {
	f := benchFigures()
	for i := 0; i < b.N; i++ {
		logTable(b, f.Fig9())
	}
	var vsClose, vsOpen []float64
	for _, w := range Workloads() {
		bc := f.Run(MechBaseClose, w).EPATotal
		bo := f.Run(MechBaseOpen, w).EPATotal
		bm := f.Run(MechBuMP, w).EPATotal
		vsClose = append(vsClose, 1-bm/bc)
		vsOpen = append(vsOpen, 1-bm/bo)
	}
	// Paper: BuMP reduces energy/access 34% vs Base-close, 23% vs
	// Base-open.
	b.ReportMetric(100*stats.Mean(vsClose), "%saveVsClose")
	b.ReportMetric(100*stats.Mean(vsOpen), "%saveVsOpen")
}

// BenchmarkFig10Performance regenerates Figure 10: throughput improvement
// over Base-close.
func BenchmarkFig10Performance(b *testing.B) {
	f := benchFigures()
	for i := 0; i < b.N; i++ {
		logTable(b, f.Fig10())
	}
	var bumpGain, openGain, frGain []float64
	for _, w := range Workloads() {
		ref := f.Run(MechBaseClose, w).IPC()
		bumpGain = append(bumpGain, stats.Speedup(ref, f.Run(MechBuMP, w).IPC()))
		openGain = append(openGain, stats.Speedup(ref, f.Run(MechBaseOpen, w).IPC()))
		frGain = append(frGain, stats.Speedup(ref, f.Run(MechFullRegion, w).IPC()))
	}
	// Paper: BuMP +9% vs Base-close (+11% vs Base-open), Base-open -1-2%,
	// Full-region large losses.
	b.ReportMetric(100*stats.Mean(bumpGain), "%bumpSpeedup")
	b.ReportMetric(100*stats.Mean(openGain), "%openSpeedup")
	b.ReportMetric(100*stats.Mean(frGain), "%fullRegionSpeedup")
}

// BenchmarkFig11DesignSpace regenerates Figure 11: energy improvement
// across region sizes {512B,1KB,2KB} x thresholds {25,50,75,100}%.
func BenchmarkFig11DesignSpace(b *testing.B) {
	f := benchFigures()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = f.Fig11()
		logTable(b, t)
	}
	// Headline: the paper's chosen configuration (1KB at 50%) is the
	// best or near-best cell.
	_ = t
	var best float64
	for _, w := range Workloads() {
		base := f.Run(MechBaseOpen, w).EPATotal
		v := f.RunVariant(w, 10, 8).EPATotal
		best += 1 - v/base
	}
	b.ReportMetric(100*best/float64(len(Workloads())), "%gain1KB50")
}

// BenchmarkFig12OnChipOverheads regenerates Figure 12: BuMP's LLC and NOC
// traffic/energy overheads (paper: ~10-13%).
func BenchmarkFig12OnChipOverheads(b *testing.B) {
	f := benchFigures()
	for i := 0; i < b.N; i++ {
		logTable(b, f.Fig12())
	}
	var llc, noct []float64
	for _, w := range Workloads() {
		base := f.Run(MechBaseOpen, w)
		bm := f.Run(MechBuMP, w)
		llc = append(llc, (float64(bm.LLCTraffic())/float64(bm.Instructions))/
			(float64(base.LLCTraffic())/float64(base.Instructions)))
		noct = append(noct, (float64(bm.NOCTrafficBytes())/float64(bm.Instructions))/
			(float64(base.NOCTrafficBytes())/float64(base.Instructions)))
	}
	b.ReportMetric(100*(stats.Mean(llc)-1), "%llcTrafficOverhead")
	b.ReportMetric(100*(stats.Mean(noct)-1), "%nocTrafficOverhead")
}

// BenchmarkFig13Summary regenerates Figure 13: hit ratio and energy per
// access for all seven systems plus Ideal.
func BenchmarkFig13Summary(b *testing.B) {
	f := benchFigures()
	var t *stats.Table
	for i := 0; i < b.N; i++ {
		t = f.Fig13()
		logTable(b, t)
	}
	_ = t
	var hit [8]float64
	order := []Mechanism{MechBaseClose, MechBaseOpen, MechSMS, MechVWQ, MechSMSVWQ, MechFullRegion, MechBuMP}
	for i, m := range order {
		var hs []float64
		for _, w := range Workloads() {
			hs = append(hs, f.Run(m, w).RowHitRatio())
		}
		hit[i] = stats.Mean(hs)
	}
	// Paper: Base-open 21%, SMS 30%, VWQ 36%, SMS+VWQ 44%, BuMP 55%,
	// Ideal 77%.
	b.ReportMetric(100*hit[1], "%hitBaseOpen")
	b.ReportMetric(100*hit[2], "%hitSMS")
	b.ReportMetric(100*hit[3], "%hitVWQ")
	b.ReportMetric(100*hit[4], "%hitSMSVWQ")
	b.ReportMetric(100*hit[6], "%hitBuMP")
}

// BenchmarkTable4BuMPHitRatio regenerates Table IV: BuMP's per-workload
// row-buffer hit ratio (paper: 34-64%).
func BenchmarkTable4BuMPHitRatio(b *testing.B) {
	f := benchFigures()
	for i := 0; i < b.N; i++ {
		logTable(b, f.Table4())
	}
	var hits []float64
	for _, w := range Workloads() {
		hits = append(hits, f.Run(MechBuMP, w).RowHitRatio())
	}
	b.ReportMetric(100*stats.Mean(hits), "%bumpHit")
}

// BenchmarkSimulatorThroughput measures the raw simulation speed of the
// engine (events are the unit of work), for performance tracking of the
// simulator itself. It reports events/sec and allocs/event so the perf
// trajectory is machine-readable across PRs.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := WebSearch()
	var events uint64
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(MechBuMP, w)
		cfg.WarmupCycles = 100_000
		cfg.MeasureCycles = 400_000
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	if events > 0 {
		eventsPerSec := float64(events) / b.Elapsed().Seconds()
		allocsPerEvent := float64(after.Mallocs-before.Mallocs) / float64(events)
		b.ReportMetric(eventsPerSec, "events/sec")
		b.ReportMetric(allocsPerEvent, "allocs/event")
		writeBenchJSON(b, eventsPerSec, allocsPerEvent, events)
	}
}

// BenchmarkForkSweep measures the checkpoint-tree sweep economics: a
// 16-point fairness-cap sweep with one mid-measurement cut, where every
// point restores the shared trunk and simulates only its branch tail.
// It reports trunk vs branch cycles simulated and the speedup over the
// equivalent 16 cold sequential runs, and records them as a
// machine-readable artifact when BENCH_JSON names a path.
func BenchmarkForkSweep(b *testing.B) {
	base := DefaultConfig(MechBuMP, WebSearch())
	base.WarmupCycles = 100_000
	base.MeasureCycles = 400_000
	cut := base.WarmupCycles + base.MeasureCycles/2
	const points = 16

	var st sim.WarmStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := sim.NewWarmStore(8)
		for cap := 0; cap < points; cap++ {
			cfg := base
			cfg.MaxRowHitStreak = cap
			cfg.ForkAt = cut
			cfg.ForkCycles = []uint64{cut}
			if _, err := ws.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
		st = ws.Stats()
	}
	b.StopTimer()

	trunk := st.WarmupCyclesSimulated + st.TrunkCyclesSimulated
	branch := st.BranchCyclesSimulated
	cold := uint64(points) * (base.WarmupCycles + base.MeasureCycles)
	b.ReportMetric(float64(trunk), "trunkCycles")
	b.ReportMetric(float64(branch), "branchCycles")
	b.ReportMetric(float64(cold)/float64(trunk+branch), "xVsColdCycles")
	writeForkSweepBenchJSON(b, st, trunk, branch, cold)
}

// writeForkSweepBenchJSON records the trunk-vs-branch sweep ledger as a
// machine-readable artifact when BENCH_JSON names a path (CI uploads it
// per commit as BENCH_forksweep.json).
func writeForkSweepBenchJSON(b *testing.B, st sim.WarmStats, trunk, branch, cold uint64) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		return
	}
	payload := map[string]any{
		"benchmark":               "ForkSweep",
		"iterations":              b.N,
		"trunk_cycles_simulated":  trunk,
		"branch_cycles_simulated": branch,
		"cold_equivalent_cycles":  cold,
		"cycle_speedup_vs_cold":   float64(cold) / float64(trunk+branch),
		"warm":                    st,
		"ns_per_op":               float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		"gomaxprocs":              runtime.GOMAXPROCS(0),
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench json: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
	b.Logf("wrote %s", path)
}

// BenchmarkParallelScaling measures the sharded engine's scaling curve:
// one dense configuration (64 cores, small caches, so lookahead windows
// carry enough same-cycle events to fan out instead of running inline)
// at Workers 1/2/4/8. Results are byte-identical across the whole curve
// — the differential harness pins that — so this benchmark reports pure
// wall-clock. Each point raises GOMAXPROCS to its shard count (restored
// afterwards); the artifact records the host's true P count so numbers
// from oversubscribed single-CPU runners are never mistaken for real
// scaling.
func BenchmarkParallelScaling(b *testing.B) {
	base := DefaultConfig(MechBuMP, WebSearch())
	base.Cores = 192
	base.L1Bytes = 8 << 10
	base.LLCBytes = 512 << 10
	base.WarmupCycles = 20_000
	base.MeasureCycles = 60_000

	type point struct {
		Workers         int     `json:"workers"`
		NsPerOp         float64 `json:"ns_per_op"`
		EventsPerSec    float64 `json:"events_per_sec"`
		SpeedupVsSeq    float64 `json:"speedup_vs_sequential"`
		Windows         uint64  `json:"windows"`
		ParallelWindows uint64  `json:"parallel_windows"`
		BarrierStallPct float64 `json:"barrier_stall_pct"`
	}
	hostProcs := runtime.GOMAXPROCS(0)
	var points []point
	for _, wk := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(wk), func(b *testing.B) {
			if prev := runtime.GOMAXPROCS(0); wk > prev {
				runtime.GOMAXPROCS(wk)
				defer runtime.GOMAXPROCS(prev)
			}
			var events uint64
			var last sim.ParallelStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := base
				cfg.Workers = wk
				res, err := sim.RunOneWithHooks(cfg, sim.Hooks{
					Parallel: func(st sim.ParallelStats) { last = st },
				})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.StopTimer()
			pt := point{
				Workers:      wk,
				NsPerOp:      float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				EventsPerSec: float64(events) / b.Elapsed().Seconds(),
			}
			if last.RunNs > 0 {
				pt.Windows = last.Windows
				pt.ParallelWindows = last.ParallelWindows
				pt.BarrierStallPct = 100 * float64(last.BarrierStallNs) / float64(last.RunNs)
			}
			b.ReportMetric(pt.EventsPerSec, "events/sec")
			points = append(points, pt)
		})
	}
	for i := range points {
		if points[0].NsPerOp > 0 {
			points[i].SpeedupVsSeq = points[0].NsPerOp / points[i].NsPerOp
		}
		b.Logf("workers=%d: %.2fx vs sequential (%d/%d windows parallel, %.1f%% barrier stall)",
			points[i].Workers, points[i].SpeedupVsSeq,
			points[i].ParallelWindows, points[i].Windows, points[i].BarrierStallPct)
	}
	if path := os.Getenv("BENCH_JSON"); path != "" && len(points) > 0 {
		payload := map[string]any{
			"benchmark":       "ParallelScaling",
			"host_gomaxprocs": hostProcs,
			"config": map[string]any{
				"cores":          base.Cores,
				"mechanism":      MechBuMP.String(),
				"workload":       base.Workload.Name,
				"warmup_cycles":  base.WarmupCycles,
				"measure_cycles": base.MeasureCycles,
			},
			"points": points,
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			b.Fatalf("marshal bench json: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatalf("write %s: %v", path, err)
		}
		b.Logf("wrote %s", path)
	}
}

// writeBenchJSON records the throughput metrics as a machine-readable
// artifact when BENCH_JSON names a path (CI uploads it per commit to
// track the perf trajectory across PRs).
func writeBenchJSON(b *testing.B, eventsPerSec, allocsPerEvent float64, events uint64) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		return
	}
	payload := map[string]any{
		"benchmark":        "SimulatorThroughput",
		"iterations":       b.N,
		"events":           events,
		"events_per_sec":   eventsPerSec,
		"allocs_per_event": allocsPerEvent,
		"ns_per_op":        float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		"gomaxprocs":       runtime.GOMAXPROCS(0),
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		b.Fatalf("marshal bench json: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
	b.Logf("wrote %s", path)
}
