// Ablation benchmarks for the design choices DESIGN.md calls out and the
// scalability claims of the paper's Section VI. These go beyond the
// paper's figures: they vary one structural parameter at a time and
// report the metric that parameter is supposed to move.
package bump

import (
	"testing"

	"bump/internal/sim"
	"bump/internal/stats"
)

// ablationConfig returns a moderately sized run for ablation sweeps.
func ablationConfig(m Mechanism, w Workload) Config {
	cfg := DefaultConfig(m, w)
	cfg.WarmupCycles = 600_000
	cfg.MeasureCycles = 1_200_000
	return cfg
}

// ablationWarm shares warmup-end checkpoints across ablation runs:
// repeated identical configs across benchmarks reuse their warm state
// (bit-identical to cold runs) instead of re-simulating the warmup from
// cycle 0, and structurally distinct points (different RDTT sizes,
// window sizes, ...) keep their own warmups. The one semantic shift is
// deliberate: BenchmarkAblationFairnessCap's capped points now share
// one canonical (uncapped) warmup and apply the cap in the measurement
// window only, which isolates the scheduler policy's effect instead of
// conflating it with a differently warmed cache.
var ablationWarm = sim.NewWarmStore(64)

func mustRun(b *testing.B, cfg Config) Result {
	b.Helper()
	res, err := ablationWarm.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationRDTTScaling reproduces the Section V.B/VI claim: when
// the number of simultaneously active regions exceeds the RDTT, the
// tracking tables become the coverage bottleneck, and growing them
// from 256-entry toward 2048-entry tables recovers coverage (paper's
// Software Testing: 28% -> up to 44%). The sweep uses a Software Testing
// variant with even heavier object interleaving (the capacity-bound
// regime the paper describes: ~1000 simultaneously active regions), so
// RDTT capacity — not predictor training — is the binding constraint.
func BenchmarkAblationRDTTScaling(b *testing.B) {
	w := SoftwareTesting()
	w.Name = "software-testing-capacity-bound"
	w.OpenTasks = 64   // ~1024 active regions across the CMP
	w.PhaseTasks = 500 // near-stationary code/data mapping
	for i := 0; i < b.N; i++ {
		t := stats.NewTable("Ablation: RDTT size vs read coverage (software-testing, capacity-bound)",
			"RDTT entries", "read-coverage", "row-hit")
		var cov256, cov2048 float64
		for _, entries := range []int{128, 256, 512, 1024, 2048} {
			cfg := ablationConfig(MechBuMP, w)
			cfg.BuMP.TriggerEntries = entries
			cfg.BuMP.DensityEntries = entries
			res := mustRun(b, cfg)
			cov := res.ReadCoverage()
			t.AddRow(entries, 100*cov, 100*res.RowHitRatio())
			switch entries {
			case 256:
				cov256 = cov
			case 2048:
				cov2048 = cov
			}
		}
		if cov2048 <= cov256 {
			b.Log("warning: larger RDTT should raise capacity-bound coverage")
		}
		b.ReportMetric(100*cov256, "%cov256")
		b.ReportMetric(100*cov2048, "%cov2048")
		b.Logf("\n%s", t)
	}
}

// BenchmarkAblationBHTCapacity sweeps the bulk history table (Section
// VI's virtualisation discussion: more concurrent workloads need a
// larger BHT).
func BenchmarkAblationBHTCapacity(b *testing.B) {
	w := WebServing()
	for i := 0; i < b.N; i++ {
		t := stats.NewTable("Ablation: BHT entries vs read coverage (web-serving)",
			"BHT entries", "read-coverage", "overfetch")
		for _, entries := range []int{64, 256, 1024, 4096} {
			cfg := ablationConfig(MechBuMP, w)
			cfg.BuMP.BHTEntries = entries
			res := mustRun(b, cfg)
			t.AddRow(entries, 100*res.ReadCoverage(), 100*res.ReadOverfetch())
			if entries == 1024 {
				b.ReportMetric(100*res.ReadCoverage(), "%cov1024")
			}
		}
		b.Logf("\n%s", t)
	}
}

// BenchmarkAblationInterleaving runs BuMP on the block-interleaved
// mapping: bulk transfers then span banks/rows instead of filling one
// row, so the activation savings should largely disappear (Section
// IV.D's rationale for region-level interleaving).
func BenchmarkAblationInterleaving(b *testing.B) {
	w := WebSearch()
	for i := 0; i < b.N; i++ {
		region := mustRun(b, ablationConfig(MechBuMP, w))
		blockCfg := ablationConfig(MechBuMP, w)
		blockCfg.ForceBlockInterleave = true
		block := mustRun(b, blockCfg)
		b.ReportMetric(100*region.RowHitRatio(), "%hitRegionIL")
		b.ReportMetric(100*block.RowHitRatio(), "%hitBlockIL")
		b.ReportMetric(region.EPATotal*1e9, "nJRegionIL")
		b.ReportMetric(block.EPATotal*1e9, "nJBlockIL")
		if block.RowHitRatio() >= region.RowHitRatio() {
			b.Log("warning: block interleaving should hurt BuMP's row locality")
		}
	}
}

// BenchmarkAblationBuMPVWQ evaluates the paper's footnote extension:
// BuMP plus VWQ for the dirty evictions BuMP does not claim.
func BenchmarkAblationBuMPVWQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := stats.NewTable("Extension: BuMP vs BuMP+VWQ",
			"workload", "wcov-bump", "wcov-bump+vwq", "hit-bump", "hit-bump+vwq")
		var dw []float64
		for _, w := range Workloads() {
			bm := mustRun(b, ablationConfig(MechBuMP, w))
			bv := mustRun(b, ablationConfig(sim.BuMPVWQ, w))
			t.AddRow(w.Name, 100*bm.WriteCoverage(), 100*bv.WriteCoverage(),
				100*bm.RowHitRatio(), 100*bv.RowHitRatio())
			dw = append(dw, bv.WriteCoverage()-bm.WriteCoverage())
		}
		b.Logf("\n%s", t)
		b.ReportMetric(100*stats.Mean(dw), "%extraWriteCov")
	}
}

// BenchmarkAblationWindowSize sweeps the core's out-of-order window: BuMP
// gains shrink as the window grows (more latency already hidden), the
// paper's explanation for Media Streaming's small speedup.
func BenchmarkAblationWindowSize(b *testing.B) {
	w := WebSearch()
	for i := 0; i < b.N; i++ {
		t := stats.NewTable("Ablation: window size vs BuMP speedup (web-search)",
			"window", "base-IPC", "bump-IPC", "speedup")
		for _, win := range []int{16, 48, 128, 512} {
			bc := ablationConfig(MechBaseOpen, w)
			bc.WindowSize = win
			base := mustRun(b, bc)
			mc := ablationConfig(MechBuMP, w)
			mc.WindowSize = win
			bm := mustRun(b, mc)
			sp := stats.Speedup(base.IPC(), bm.IPC())
			t.AddRow(win, base.IPC(), bm.IPC(), 100*sp)
			if win == 48 {
				b.ReportMetric(100*sp, "%speedup48")
			}
		}
		b.Logf("\n%s", t)
	}
}
