// Further ablation benchmarks: the footprint alternative and
// fairness-capped scheduling.
package bump

import (
	"testing"

	"bump/internal/stats"
)

// BenchmarkAblationFootprint compares the paper's whole-region streaming
// against an SMS-style footprint variant that fetches only the trained
// block pattern. The paper's rationale (Section II.C/VII): whole-region
// transfers guarantee one activation per region and need far less
// storage; footprints trade lower overfetch for lost row locality and
// coverage.
func BenchmarkAblationFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := stats.NewTable("Ablation: whole-region vs footprint streaming",
			"workload", "cov-region", "cov-footprint", "ovf-region", "ovf-footprint", "hit-region", "hit-footprint")
		var dOvf, dHit []float64
		for _, w := range Workloads() {
			whole := mustRun(b, ablationConfig(MechBuMP, w))
			fpCfg := ablationConfig(MechBuMP, w)
			fpCfg.BuMP.Footprint = true
			fp := mustRun(b, fpCfg)
			t.AddRow(w.Name,
				100*whole.ReadCoverage(), 100*fp.ReadCoverage(),
				100*whole.ReadOverfetch(), 100*fp.ReadOverfetch(),
				100*whole.RowHitRatio(), 100*fp.RowHitRatio())
			dOvf = append(dOvf, whole.ReadOverfetch()-fp.ReadOverfetch())
			dHit = append(dHit, whole.RowHitRatio()-fp.RowHitRatio())
		}
		b.Logf("\n%s", t)
		b.ReportMetric(100*stats.Mean(dOvf), "%overfetchSavedByFootprint")
		b.ReportMetric(100*stats.Mean(dHit), "%hitLostByFootprint")
	}
}

// BenchmarkAblationFairnessCap applies a row-hit streak cap to BuMP's
// FR-FCFS scheduler (the fairness-aware policies of Section VI): a small
// cap trades row-buffer locality for bounded queueing of unlucky
// requests.
func BenchmarkAblationFairnessCap(b *testing.B) {
	w := WebSearch()
	for i := 0; i < b.N; i++ {
		t := stats.NewTable("Ablation: FR-FCFS row-hit streak cap (web-search, BuMP)",
			"cap", "row-hit", "IPC", "nJ/access")
		for _, cap := range []int{0, 64, 16, 4} {
			cfg := ablationConfig(MechBuMP, w)
			cfg.MaxRowHitStreak = cap
			res := mustRun(b, cfg)
			name := "off"
			if cap > 0 {
				name = stats.FormatFloat(float64(cap))
			}
			t.AddRow(name, 100*res.RowHitRatio(), res.IPC(), res.EPATotal*1e9)
			if cap == 4 {
				b.ReportMetric(100*res.RowHitRatio(), "%hitCap4")
			}
			if cap == 0 {
				b.ReportMetric(100*res.RowHitRatio(), "%hitUncapped")
			}
		}
		b.Logf("\n%s", t)
	}
}

// BenchmarkMultiSeedConfidence runs BuMP on web-search across seeds and
// reports the 95% confidence half-widths, reproducing the paper's
// SMARTS-style error discipline (average error below 2%).
func BenchmarkMultiSeedConfidence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig(MechBuMP, WebSearch())
		rs, err := RunSeeds(cfg, []int64{1, 2, 3, 4, 5})
		if err != nil {
			b.Fatal(err)
		}
		a := AggregateResults(rs)
		b.ReportMetric(100*a.RowHitRatio, "%hit")
		b.ReportMetric(100*a.RowHitRatioCI, "%hitCI95")
		b.ReportMetric(a.IPC, "ipc")
		b.ReportMetric(a.IPCCI, "ipcCI95")
		if a.IPC > 0 && a.IPCCI/a.IPC > 0.05 {
			b.Logf("warning: IPC confidence interval above 5%%: %.3f±%.3f", a.IPC, a.IPCCI)
		}
	}
}
