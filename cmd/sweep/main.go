// Command sweep runs parameter sweeps and emits CSV for plotting: every
// (workload, mechanism) pair, the Fig. 11 design grid, a multi-seed
// confidence run, or the FR-FCFS fairness-cap sweep.
//
// Every mode expresses its matrix as a batch of service job specs. By
// default the batch executes on an in-process service.Pool (bounded
// workers, duplicate coalescing, result caching); with -server the same
// batch is submitted to a running bumpd instance and collated from its
// responses, so many sweep clients can share one simulation service and
// its cache.
//
// With -warm the in-process pool shares warmup-end checkpoints between
// sweep points whose configurations differ only in measured parameters:
// the fairness mode's sixteen row-hit-streak caps then simulate one
// warmup total instead of sixteen. (Against a -server, enable warm
// starts on bumpd instead.)
//
// Usage:
//
//	sweep -mode systems  > systems.csv
//	sweep -mode design   > design.csv
//	sweep -mode seeds -workload web-search -n 5 > seeds.csv
//	sweep -mode fairness -workload web-search -warm > fairness.csv
//	sweep -mode systems -server http://localhost:8344 > systems.csv
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"bump"
	"bump/internal/service"
	"bump/internal/sim"
)

// runner executes a spec batch and returns results in batch order.
type runner interface {
	runAll(specs []service.JobSpec) ([]sim.Result, error)
}

// localRunner drives an in-process pool: the whole batch is submitted
// up front (deduplicated, cached, executed on bounded workers), then
// collected in order.
type localRunner struct{ pool *service.Pool }

func (l localRunner) runAll(specs []service.JobSpec) ([]sim.Result, error) {
	ids := make([]string, len(specs))
	for i, spec := range specs {
		st, err := l.pool.Submit(spec)
		if err != nil {
			return nil, err
		}
		ids[i] = st.ID
	}
	results := make([]sim.Result, len(specs))
	for i, id := range ids {
		st, err := l.pool.Wait(context.Background(), id)
		if err != nil {
			return nil, err
		}
		if st.State != service.StateDone || st.Result == nil {
			return nil, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		results[i] = *st.Result
	}
	return results, nil
}

// remoteRunner submits the batch to a bumpd server and polls it down.
type remoteRunner struct{ client *service.Client }

func (r remoteRunner) runAll(specs []service.JobSpec) ([]sim.Result, error) {
	ids := make([]string, len(specs))
	terminal := make([]*service.JobStatus, len(specs))
	for i, spec := range specs {
		st, err := r.client.Submit(spec)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			s := st
			terminal[i] = &s
		}
		ids[i] = st.ID
	}
	results := make([]sim.Result, len(specs))
	for i := range specs {
		st := terminal[i]
		if st == nil {
			s, err := r.client.Wait(context.Background(), ids[i])
			if err != nil {
				return nil, err
			}
			st = &s
		}
		if st.State != service.StateDone || st.Result == nil {
			return nil, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		results[i] = *st.Result
	}
	return results, nil
}

func main() {
	var (
		mode         = flag.String("mode", "systems", "sweep mode: systems, design, seeds, fairness")
		workloadName = flag.String("workload", "web-search", "workload for -mode seeds and -mode fairness")
		n            = flag.Int("n", 5, "seed count for -mode seeds")
		warmup       = flag.Uint64("warmup", 700_000, "warmup cycles")
		measure      = flag.Uint64("measure", 1_500_000, "measurement cycles")
		server       = flag.String("server", "", "bumpd base URL (e.g. http://localhost:8344); empty runs in-process")
		warm         = flag.Bool("warm", false, "share warmup-end checkpoints between in-process sweep points that differ only in measured parameters")
	)
	flag.Parse()

	var pool *service.Pool
	var run runner
	if *server != "" {
		if *warm {
			fmt.Fprintln(os.Stderr, "sweep: -warm applies to in-process runs; enable warm starts on bumpd with its -warm flag")
		}
		run = remoteRunner{client: service.NewClient(*server)}
	} else {
		pool = service.NewPool(service.Options{WarmStarts: *warm})
		defer pool.Close()
		run = localRunner{pool: pool}
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	baseSpec := func(m bump.Mechanism, wl string) service.JobSpec {
		return service.JobSpec{
			Workload:      wl,
			Mechanism:     m.String(),
			WarmupCycles:  *warmup,
			MeasureCycles: *measure,
		}
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

	switch *mode {
	case "systems":
		var specs []service.JobSpec
		for _, wl := range bump.Workloads() {
			for _, m := range bump.Mechanisms() {
				specs = append(specs, baseSpec(m, wl.Name))
			}
		}
		results, err := run.runAll(specs)
		if err != nil {
			fatal(err)
		}
		w.Write([]string{"workload", "mechanism", "row_hit", "ipc", "epa_nj", "read_coverage", "read_overfetch", "write_coverage"})
		for i, res := range results {
			w.Write([]string{specs[i].Workload, specs[i].Mechanism, f(res.RowHitRatio()), f(res.IPC()),
				f(res.EPATotal * 1e9), f(res.ReadCoverage()), f(res.ReadOverfetch()), f(res.WriteCoverage())})
		}
	case "design":
		var specs []service.JobSpec
		for _, wl := range bump.Workloads() {
			for _, shift := range []uint{9, 10, 11} {
				blocks := uint(1) << (shift - 6)
				for _, pct := range []uint{25, 50, 75, 100} {
					spec := baseSpec(bump.MechBuMP, wl.Name)
					spec.RegionShift = shift
					spec.DensityThreshold = blocks * pct / 100
					if spec.DensityThreshold == 0 {
						spec.DensityThreshold = 1
					}
					specs = append(specs, spec)
				}
			}
		}
		results, err := run.runAll(specs)
		if err != nil {
			fatal(err)
		}
		w.Write([]string{"workload", "region_bytes", "threshold_blocks", "row_hit", "epa_nj", "read_coverage", "read_overfetch"})
		for i, res := range results {
			w.Write([]string{specs[i].Workload, strconv.Itoa(1 << specs[i].RegionShift), strconv.Itoa(int(specs[i].DensityThreshold)),
				f(res.RowHitRatio()), f(res.EPATotal * 1e9), f(res.ReadCoverage()), f(res.ReadOverfetch())})
		}
	case "fairness":
		// Sixteen FR-FCFS row-hit streak caps over one workload. The
		// cap is a measured parameter, so with -warm all sixteen points
		// restore one shared warm checkpoint.
		wl, ok := bump.WorkloadByName(*workloadName)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *workloadName))
		}
		var specs []service.JobSpec
		for cap := 0; cap < 16; cap++ {
			spec := baseSpec(bump.MechBuMP, wl.Name)
			spec.MaxRowHitStreak = cap
			specs = append(specs, spec)
		}
		results, err := run.runAll(specs)
		if err != nil {
			fatal(err)
		}
		w.Write([]string{"streak_cap", "row_hit", "ipc", "epa_nj", "read_qdelay"})
		for i, res := range results {
			cap := "off"
			if specs[i].MaxRowHitStreak > 0 {
				cap = strconv.Itoa(specs[i].MaxRowHitStreak)
			}
			qd := 0.0
			if res.Ctrl.Reads > 0 {
				qd = float64(res.Ctrl.ReadQueueDelay) / float64(res.Ctrl.Reads)
			}
			w.Write([]string{cap, f(res.RowHitRatio()), f(res.IPC()), f(res.EPATotal * 1e9), f(qd)})
		}
		if pool != nil && *warm {
			st := pool.Stats()
			fmt.Fprintf(os.Stderr, "sweep: warm checkpoints: %d simulated / %d reused warmup cycles (%d hits, %d misses)\n",
				st.Warm.WarmupCyclesSimulated, st.Warm.WarmupCyclesReused, st.Warm.Hits, st.Warm.Misses)
		}
	case "seeds":
		wl, ok := bump.WorkloadByName(*workloadName)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *workloadName))
		}
		specs := make([]service.JobSpec, *n)
		seeds := make([]int64, *n)
		for i := range specs {
			seeds[i] = int64(i + 1)
			specs[i] = baseSpec(bump.MechBuMP, wl.Name)
			specs[i].Seed = seeds[i]
		}
		rs, err := run.runAll(specs)
		if err != nil {
			fatal(err)
		}
		w.Write([]string{"seed", "row_hit", "ipc", "epa_nj"})
		for i, r := range rs {
			w.Write([]string{strconv.FormatInt(seeds[i], 10), f(r.RowHitRatio()), f(r.IPC()), f(r.EPATotal * 1e9)})
		}
		a := bump.AggregateResults(rs)
		w.Write([]string{"mean", f(a.RowHitRatio), f(a.IPC), f(a.EPATotal * 1e9)})
		w.Write([]string{"ci95", f(a.RowHitRatioCI), f(a.IPCCI), f(a.EPATotalCI * 1e9)})
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	os.Exit(1)
}
