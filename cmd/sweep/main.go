// Command sweep runs parameter sweeps and emits CSV for plotting: every
// (workload, mechanism) pair, the Fig. 11 design grid, a multi-seed
// confidence run, or the FR-FCFS fairness-cap sweep.
//
// Every mode expresses its matrix as a batch of service job specs. By
// default the batch executes on an in-process service.Pool (bounded
// workers, duplicate coalescing, result caching); with -server the same
// batch is submitted to a running bumpd or bumpctl instance (one POST
// /v1/batch request), so many sweep clients can share one simulation
// service and its cache. A comma-separated -server list of bumpd
// workers embeds an in-process cluster coordinator instead: points are
// routed by warm-affinity key across the fleet with automatic failover,
// and a per-worker warm/cache report is printed after the sweep.
//
// With -warm the in-process pool shares warmup-end checkpoints between
// sweep points whose configurations differ only in measured parameters:
// the fairness mode's sixteen row-hit-streak caps then simulate one
// warmup total instead of sixteen. (Against a -server, enable warm
// starts on bumpd instead.) Adding -fork-at pushes the shared prefix
// past the warmup boundary: the listed cycles become checkpoint-tree
// cuts on the canonical trunk, every fairness point defers its cap to
// the deepest cut, and the sweep costs one trunk plus sixteen short
// branch tails instead of sixteen full measurement windows.
//
// Usage:
//
//	sweep -mode systems  > systems.csv
//	sweep -mode design   > design.csv
//	sweep -mode seeds -workload web-search -n 5 > seeds.csv
//	sweep -mode fairness -workload web-search -warm > fairness.csv
//	sweep -mode fairness -workload web-search -warm -fork-at 1200000,1600000 > fairness.csv
//	sweep -mode systems -server http://localhost:8344 > systems.csv
//	sweep -mode fairness -server http://host1:8344,http://host2:8344,http://host3:8344 > fairness.csv
//	sweep -mode scenarios > scenarios.csv      # built-in scenario library
//	sweep -mode fairness -scenario phase-swap -warm > fairness.csv
//	sweep -mode systems -scenario my-scenario.json > systems.csv
//
// With -scenario (a built-in name or a JSON spec file), every mode runs
// its matrix against the multi-phase, multi-tenant scenario instead of a
// stationary workload; the scenario is part of each job's config hash,
// so caching, coalescing and warm starts work exactly as for presets.
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bump"
	"bump/internal/cluster"
	"bump/internal/scenario"
	"bump/internal/service"
	"bump/internal/sim"
)

// runner executes a spec batch and returns results in batch order.
type runner interface {
	runAll(specs []service.JobSpec) ([]sim.Result, error)
}

// unwrapBatch converts an ordered batch aggregate into bare results,
// failing on the first point that did not complete.
func unwrapBatch(res service.BatchResult) ([]sim.Result, error) {
	payloads, err := res.Results()
	if err != nil {
		return nil, err
	}
	results := make([]sim.Result, len(payloads))
	for i, p := range payloads {
		results[i] = *p.Result
	}
	return results, nil
}

// localRunner drives an in-process pool: the whole batch is submitted
// up front (deduplicated, cached, executed on bounded workers), then
// collected in order.
type localRunner struct{ pool *service.Pool }

func (l localRunner) runAll(specs []service.JobSpec) ([]sim.Result, error) {
	res, err := service.RunBatch(context.Background(), l.pool, service.BatchSpec{Specs: specs}, nil)
	if err != nil {
		return nil, err
	}
	return unwrapBatch(res)
}

// remoteRunner submits the batch to a bumpd or bumpctl server — one
// POST /v1/batch when the server speaks it, falling back to per-job
// submit-and-poll against older daemons.
type remoteRunner struct{ client *service.Client }

func (r remoteRunner) runAll(specs []service.JobSpec) ([]sim.Result, error) {
	ctx := context.Background()
	res, err := r.client.Batch(ctx, service.BatchSpec{Specs: specs}, nil)
	if err == nil {
		return unwrapBatch(res)
	}
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || (apiErr.Code != 404 && apiErr.Code != 405) {
		return nil, err
	}
	// Pre-batch server: submit each spec and poll it down.
	ids := make([]string, len(specs))
	terminal := make([]*service.JobStatus, len(specs))
	for i, spec := range specs {
		st, err := r.client.Submit(ctx, spec)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			s := st
			terminal[i] = &s
		}
		ids[i] = st.ID
	}
	results := make([]sim.Result, len(specs))
	for i := range specs {
		st := terminal[i]
		if st == nil {
			s, err := r.client.Wait(ctx, ids[i])
			if err != nil {
				return nil, err
			}
			st = &s
		}
		if st.State != service.StateDone || st.Result == nil {
			return nil, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
		}
		results[i] = *st.Result
	}
	return results, nil
}

// clusterRunner embeds an in-process coordinator over a worker fleet:
// each point is routed to its warm-affinity worker with failover, so a
// measured-parameter sweep warms once per distinct structural config
// fleet-wide.
type clusterRunner struct{ coord *cluster.Coordinator }

func (c clusterRunner) runAll(specs []service.JobSpec) ([]sim.Result, error) {
	res, err := c.coord.Batch(context.Background(), service.BatchSpec{Specs: specs}, nil)
	if err != nil {
		return nil, err
	}
	return unwrapBatch(res)
}

func main() {
	var (
		mode         = flag.String("mode", "systems", "sweep mode: systems, design, seeds, fairness, scenarios")
		workloadName = flag.String("workload", "web-search", "workload for -mode seeds and -mode fairness")
		scenarioFlag = flag.String("scenario", "", "run the matrix against a scenario instead of workload presets: a built-in name or a JSON spec file")
		n            = flag.Int("n", 5, "seed count for -mode seeds")
		warmup       = flag.Uint64("warmup", 700_000, "warmup cycles")
		measure      = flag.Uint64("measure", 1_500_000, "measurement cycles")
		server       = flag.String("server", "", "bumpd/bumpctl base URL, or a comma-separated bumpd worker list to coordinate in-process; empty runs fully in-process")
		warm         = flag.Bool("warm", false, "share warmup-end checkpoints between in-process sweep points that differ only in measured parameters")
		forkAt       = flag.String("fork-at", "", "comma-separated absolute cycles inside the measurement window where -mode fairness points fork from a shared canonical trunk (deepest cut binds the streak cap; implies deferred measured parameters)")
		jsonOnly     = flag.Bool("json-only", false, "talk HTTP/JSON to -server even when it advertises a binary wire listener")
		workers      = flag.Int("workers", 0, "parallel shards per simulation (0 or 1 = sequential; a resource knob only — results, coalescing and caching are identical at any value)")
	)
	flag.Parse()

	// -fork-at: parse the checkpoint-tree cut list once, up front, so a
	// malformed list fails before any simulation runs.
	var forkCuts []uint64
	if *forkAt != "" {
		for _, part := range strings.Split(*forkAt, ",") {
			cut, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fatal(fmt.Errorf("-fork-at %q: %v", part, err))
			}
			if cut <= *warmup || cut >= *warmup+*measure {
				fatal(fmt.Errorf("-fork-at %d is outside the measurement window (%d, %d)", cut, *warmup, *warmup+*measure))
			}
			if len(forkCuts) > 0 && cut <= forkCuts[len(forkCuts)-1] {
				fatal(fmt.Errorf("-fork-at cuts must be strictly increasing"))
			}
			forkCuts = append(forkCuts, cut)
		}
	}

	var pool *service.Pool
	var coord *cluster.Coordinator
	var cl *service.Client
	var run runner
	switch {
	case *server != "" && strings.Contains(*server, ","):
		// A comma-separated worker list: embed an in-process coordinator
		// over the fleet (warm-affinity routing + failover, no separate
		// bumpctl needed).
		if *warm {
			fmt.Fprintln(os.Stderr, "sweep: -warm applies to in-process runs; enable warm starts on each worker with bumpd -warm")
		}
		var err error
		coord, err = cluster.New(context.Background(), cluster.Options{
			Workers:  strings.Split(*server, ","),
			Registry: cluster.RegistryOptions{DisableWire: *jsonOnly},
		})
		if err != nil {
			fatal(err)
		}
		defer coord.Close()
		if up := coord.Registry().UpCount(); up == 0 {
			fatal(fmt.Errorf("no healthy workers among %s", *server))
		}
		run = clusterRunner{coord: coord}
	case *server != "":
		if *warm {
			fmt.Fprintln(os.Stderr, "sweep: -warm applies to in-process runs; enable warm starts on bumpd with its -warm flag")
		}
		cl = service.NewClient(*server)
		cl.DisableWire = *jsonOnly
		run = remoteRunner{client: cl}
	default:
		pool = service.NewPool(service.Options{WarmStarts: *warm})
		defer pool.Close()
		run = localRunner{pool: pool}
	}
	// After the sweep, show where the fleet spent and saved its warmup
	// work — the per-worker view of warm-affinity routing — and how the
	// transport behaved (wire fast-path vs HTTP fallback, conn reuse).
	reportWire := func(ws service.WireStats) {
		if ws.Calls == 0 && ws.Fallbacks == 0 {
			return
		}
		fmt.Fprintf(os.Stderr, "sweep: wire: %d calls, %d fallbacks, %d dials, %d reused conns\n",
			ws.Calls, ws.Fallbacks, ws.Dials, ws.Reuses)
	}
	defer func() {
		if cl != nil {
			reportWire(cl.WireStats())
			if h, err := cl.Health(context.Background()); err == nil {
				ws := h.Stats.Warm
				fmt.Fprintf(os.Stderr, "sweep: server warm: %d hits/%d misses, %d fork hits/%d fork misses, %d warmup cycles reused\n",
					ws.Hits, ws.Misses, ws.ForkHits, ws.ForkMisses, ws.WarmupCyclesReused)
			}
		}
		if coord == nil {
			return
		}
		// Refresh the stats snapshot so the report reflects this sweep,
		// not the last periodic probe.
		coord.Registry().ProbeOnce(context.Background())
		for _, w := range coord.Topology().Workers {
			fmt.Fprintf(os.Stderr, "sweep: %s %s [%s] warm %d hits/%d misses, cache %d hits/%d misses, %d executions\n",
				w.ID, w.URL, w.State, w.Stats.Warm.Hits, w.Stats.Warm.Misses,
				w.Stats.Cache.Hits, w.Stats.Cache.Misses, w.Stats.Executions)
		}
		var ws service.WireStats
		for _, wk := range coord.Registry().Workers() {
			s := wk.Client.WireStats()
			ws.Calls += s.Calls
			ws.Fallbacks += s.Fallbacks
			ws.Dials += s.Dials
			ws.Reuses += s.Reuses
		}
		reportWire(ws)
	}()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	baseSpec := func(m bump.Mechanism, wl string) service.JobSpec {
		return service.JobSpec{
			Workload:      wl,
			Mechanism:     m.String(),
			WarmupCycles:  *warmup,
			MeasureCycles: *measure,
			Workers:       *workers,
		}
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

	// With -scenario, every mode's specs swap their workload for the
	// scenario. A built-in name travels by name (a remote bumpd resolves
	// it, so all clients coalesce on the same hash); a spec file travels
	// inline.
	scenarioLabel := ""
	applyScenario := func(spec service.JobSpec) service.JobSpec { return spec }
	if *scenarioFlag != "" {
		byName := func() {
			scenarioLabel = "scenario:" + *scenarioFlag
			applyScenario = func(spec service.JobSpec) service.JobSpec {
				spec.Workload = ""
				spec.Scenario = *scenarioFlag
				return spec
			}
		}
		if _, statErr := os.Stat(*scenarioFlag); statErr == nil && !scenario.Known(*scenarioFlag) {
			// A spec file travels inline.
			sc, err := scenario.Load(*scenarioFlag)
			if err != nil {
				fatal(err)
			}
			scenarioLabel = "scenario:" + sc.Name
			applyScenario = func(spec service.JobSpec) service.JobSpec {
				spec.Workload = ""
				spec.ScenarioSpec = sc
				return spec
			}
		} else if scenario.Known(*scenarioFlag) || *server != "" {
			// Built-ins travel by name so every client coalesces on the
			// same hash — and against a -server, so does any name the
			// daemon registered at startup (bumpd -scenario) that this
			// process cannot resolve locally; the daemon rejects names
			// it does not know either.
			byName()
		} else {
			_, err := scenario.Resolve(*scenarioFlag, 0) // produce the library-naming error
			fatal(err)
		}
	}
	// wlRows yields the workload axis: the scenario when set, else the
	// six presets.
	type wlRow struct {
		label string
		spec  func(m bump.Mechanism) service.JobSpec
	}
	wlRows := func() []wlRow {
		if scenarioLabel != "" {
			return []wlRow{{scenarioLabel, func(m bump.Mechanism) service.JobSpec {
				return applyScenario(baseSpec(m, ""))
			}}}
		}
		rows := make([]wlRow, 0, 6)
		for _, wl := range bump.Workloads() {
			name := wl.Name
			rows = append(rows, wlRow{name, func(m bump.Mechanism) service.JobSpec {
				return baseSpec(m, name)
			}})
		}
		return rows
	}

	switch *mode {
	case "systems":
		var specs []service.JobSpec
		var labels []string
		for _, row := range wlRows() {
			for _, m := range bump.Mechanisms() {
				specs = append(specs, row.spec(m))
				labels = append(labels, row.label)
			}
		}
		results, err := run.runAll(specs)
		if err != nil {
			fatal(err)
		}
		w.Write([]string{"workload", "mechanism", "row_hit", "ipc", "epa_nj", "read_coverage", "read_overfetch", "write_coverage"})
		for i, res := range results {
			w.Write([]string{labels[i], specs[i].Mechanism, f(res.RowHitRatio()), f(res.IPC()),
				f(res.EPATotal * 1e9), f(res.ReadCoverage()), f(res.ReadOverfetch()), f(res.WriteCoverage())})
		}
	case "scenarios":
		// The built-in scenario library × all mechanisms: the per-scenario
		// sweep output (colocation, diurnal load, phase swaps, write
		// bursts) next to the stationary-workload systems matrix.
		if scenarioLabel != "" {
			fatal(fmt.Errorf("-mode scenarios sweeps the built-in library; use -mode systems -scenario %s for one scenario", *scenarioFlag))
		}
		var specs []service.JobSpec
		var labels []string
		for _, name := range scenario.Library() {
			for _, m := range bump.Mechanisms() {
				spec := baseSpec(m, "")
				spec.Scenario = name
				specs = append(specs, spec)
				labels = append(labels, name)
			}
		}
		results, err := run.runAll(specs)
		if err != nil {
			fatal(err)
		}
		w.Write([]string{"scenario", "mechanism", "row_hit", "ipc", "epa_nj", "read_coverage", "read_overfetch", "write_coverage"})
		for i, res := range results {
			w.Write([]string{labels[i], specs[i].Mechanism, f(res.RowHitRatio()), f(res.IPC()),
				f(res.EPATotal * 1e9), f(res.ReadCoverage()), f(res.ReadOverfetch()), f(res.WriteCoverage())})
		}
	case "design":
		var specs []service.JobSpec
		var labels []string
		for _, row := range wlRows() {
			for _, shift := range []uint{9, 10, 11} {
				blocks := uint(1) << (shift - 6)
				for _, pct := range []uint{25, 50, 75, 100} {
					spec := row.spec(bump.MechBuMP)
					spec.RegionShift = shift
					spec.DensityThreshold = blocks * pct / 100
					if spec.DensityThreshold == 0 {
						spec.DensityThreshold = 1
					}
					specs = append(specs, spec)
					labels = append(labels, row.label)
				}
			}
		}
		results, err := run.runAll(specs)
		if err != nil {
			fatal(err)
		}
		w.Write([]string{"workload", "region_bytes", "threshold_blocks", "row_hit", "epa_nj", "read_coverage", "read_overfetch"})
		for i, res := range results {
			w.Write([]string{labels[i], strconv.Itoa(1 << specs[i].RegionShift), strconv.Itoa(int(specs[i].DensityThreshold)),
				f(res.RowHitRatio()), f(res.EPATotal * 1e9), f(res.ReadCoverage()), f(res.ReadOverfetch())})
		}
	case "fairness":
		// Sixteen FR-FCFS row-hit streak caps over one workload (or
		// scenario). The cap is a measured parameter, so with -warm all
		// sixteen points restore one shared warm checkpoint.
		point := pointSpec(*workloadName, scenarioLabel, baseSpec, applyScenario)
		var specs []service.JobSpec
		for cap := 0; cap < 16; cap++ {
			spec := point()
			spec.MaxRowHitStreak = cap
			if len(forkCuts) > 0 {
				// Defer the cap to the deepest cut: all sixteen points
				// share the canonical trunk through that cycle, so the
				// sweep costs one trunk plus sixteen short branch tails.
				spec.ForkCycles = forkCuts
				spec.ForkAt = forkCuts[len(forkCuts)-1]
			}
			specs = append(specs, spec)
		}
		results, err := run.runAll(specs)
		if err != nil {
			fatal(err)
		}
		w.Write([]string{"streak_cap", "row_hit", "ipc", "epa_nj", "read_qdelay"})
		for i, res := range results {
			cap := "off"
			if specs[i].MaxRowHitStreak > 0 {
				cap = strconv.Itoa(specs[i].MaxRowHitStreak)
			}
			qd := 0.0
			if res.Ctrl.Reads > 0 {
				qd = float64(res.Ctrl.ReadQueueDelay) / float64(res.Ctrl.Reads)
			}
			w.Write([]string{cap, f(res.RowHitRatio()), f(res.IPC()), f(res.EPATotal * 1e9), f(qd)})
		}
		if pool != nil && *warm {
			st := pool.Stats()
			fmt.Fprintf(os.Stderr, "sweep: warm checkpoints: %d simulated / %d reused warmup cycles (%d hits, %d misses)\n",
				st.Warm.WarmupCyclesSimulated, st.Warm.WarmupCyclesReused, st.Warm.Hits, st.Warm.Misses)
			if len(forkCuts) > 0 {
				fmt.Fprintf(os.Stderr, "sweep: checkpoint tree: %d trunk / %d branch cycles simulated, %d fork cycles reused (%d fork hits, %d tree builds)\n",
					st.Warm.TrunkCyclesSimulated, st.Warm.BranchCyclesSimulated,
					st.Warm.ForkCyclesReused, st.Warm.ForkHits, st.Warm.ForkMisses)
			}
		}
	case "seeds":
		point := pointSpec(*workloadName, scenarioLabel, baseSpec, applyScenario)
		specs := make([]service.JobSpec, *n)
		seeds := make([]int64, *n)
		for i := range specs {
			seeds[i] = int64(i + 1)
			specs[i] = point()
			specs[i].Seed = seeds[i]
		}
		rs, err := run.runAll(specs)
		if err != nil {
			fatal(err)
		}
		w.Write([]string{"seed", "row_hit", "ipc", "epa_nj"})
		for i, r := range rs {
			w.Write([]string{strconv.FormatInt(seeds[i], 10), f(r.RowHitRatio()), f(r.IPC()), f(r.EPATotal * 1e9)})
		}
		a := bump.AggregateResults(rs)
		w.Write([]string{"mean", f(a.RowHitRatio), f(a.IPC), f(a.EPATotal * 1e9)})
		w.Write([]string{"ci95", f(a.RowHitRatioCI), f(a.IPCCI), f(a.EPATotalCI * 1e9)})
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

// pointSpec returns the single-point spec builder for fairness/seeds
// modes: the scenario when -scenario is set, else the named workload.
func pointSpec(workloadName, scenarioLabel string,
	base func(bump.Mechanism, string) service.JobSpec,
	applyScenario func(service.JobSpec) service.JobSpec) func() service.JobSpec {
	if scenarioLabel != "" {
		return func() service.JobSpec { return applyScenario(base(bump.MechBuMP, "")) }
	}
	wl, ok := bump.WorkloadByName(workloadName)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", workloadName))
	}
	return func() service.JobSpec { return base(bump.MechBuMP, wl.Name) }
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	os.Exit(1)
}
