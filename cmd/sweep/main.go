// Command sweep runs parameter sweeps and emits CSV for plotting: every
// (workload, mechanism) pair, the Fig. 11 design grid, or a multi-seed
// confidence run.
//
// Usage:
//
//	sweep -mode systems  > systems.csv
//	sweep -mode design   > design.csv
//	sweep -mode seeds -workload web-search -n 5 > seeds.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"bump"
)

func main() {
	var (
		mode         = flag.String("mode", "systems", "sweep mode: systems, design, seeds")
		workloadName = flag.String("workload", "web-search", "workload for -mode seeds")
		n            = flag.Int("n", 5, "seed count for -mode seeds")
		warmup       = flag.Uint64("warmup", 700_000, "warmup cycles")
		measure      = flag.Uint64("measure", 1_500_000, "measurement cycles")
	)
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	cfgFor := func(m bump.Mechanism, wl bump.Workload) bump.Config {
		cfg := bump.DefaultConfig(m, wl)
		cfg.WarmupCycles = *warmup
		cfg.MeasureCycles = *measure
		return cfg
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

	switch *mode {
	case "systems":
		w.Write([]string{"workload", "mechanism", "row_hit", "ipc", "epa_nj", "read_coverage", "read_overfetch", "write_coverage"})
		for _, wl := range bump.Workloads() {
			for _, m := range bump.Mechanisms() {
				res, err := bump.Run(cfgFor(m, wl))
				if err != nil {
					fatal(err)
				}
				w.Write([]string{wl.Name, m.String(), f(res.RowHitRatio()), f(res.IPC()),
					f(res.EPATotal * 1e9), f(res.ReadCoverage()), f(res.ReadOverfetch()), f(res.WriteCoverage())})
			}
		}
	case "design":
		w.Write([]string{"workload", "region_bytes", "threshold_blocks", "row_hit", "epa_nj", "read_coverage", "read_overfetch"})
		for _, wl := range bump.Workloads() {
			for _, shift := range []uint{9, 10, 11} {
				blocks := uint(1) << (shift - 6)
				for _, pct := range []uint{25, 50, 75, 100} {
					cfg := cfgFor(bump.MechBuMP, wl)
					cfg.BuMP.RegionShift = shift
					cfg.BuMP.DensityThreshold = blocks * pct / 100
					if cfg.BuMP.DensityThreshold == 0 {
						cfg.BuMP.DensityThreshold = 1
					}
					res, err := bump.Run(cfg)
					if err != nil {
						fatal(err)
					}
					w.Write([]string{wl.Name, strconv.Itoa(1 << shift), strconv.Itoa(int(cfg.BuMP.DensityThreshold)),
						f(res.RowHitRatio()), f(res.EPATotal * 1e9), f(res.ReadCoverage()), f(res.ReadOverfetch())})
				}
			}
		}
	case "seeds":
		wl, ok := bump.WorkloadByName(*workloadName)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *workloadName))
		}
		seeds := make([]int64, *n)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}
		rs, err := bump.RunSeeds(cfgFor(bump.MechBuMP, wl), seeds)
		if err != nil {
			fatal(err)
		}
		w.Write([]string{"seed", "row_hit", "ipc", "epa_nj"})
		for i, r := range rs {
			w.Write([]string{strconv.FormatInt(seeds[i], 10), f(r.RowHitRatio()), f(r.IPC()), f(r.EPATotal * 1e9)})
		}
		a := bump.AggregateResults(rs)
		w.Write([]string{"mean", f(a.RowHitRatio), f(a.IPC), f(a.EPATotal * 1e9)})
		w.Write([]string{"ci95", f(a.RowHitRatioCI), f(a.IPCCI), f(a.EPATotalCI * 1e9)})
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	os.Exit(1)
}
