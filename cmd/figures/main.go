// Command figures regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	figures               # everything (Figs. 1-3, 5, 8-13; Tables I, IV)
//	figures -fig 9        # one figure
//	figures -fig t4       # Table IV
//	figures -quick        # shorter simulation windows (faster, noisier)
//	figures -workloads web-search,data-serving
//	figures -scenario phase-swap         # mechanisms under one scenario
//	figures -scenario my-scenario.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bump"
	"bump/internal/scenario"
	"bump/internal/sim"
	"bump/internal/stats"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "which figure: 1,2,3,5,8,9,10,11,12,13,t1,t4,all")
		quick     = flag.Bool("quick", false, "short simulation windows")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		workloads = flag.String("workloads", "", "comma-separated subset of workloads (default all six)")
		scen      = flag.String("scenario", "", "print the mechanism comparison under a scenario (built-in name or JSON spec file) instead of the paper figures")
	)
	flag.Parse()

	if *scen != "" {
		if err := scenarioFigure(*scen, *seed, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := bump.FigureOptions{Seed: *seed}
	if *quick {
		opts.WarmupCycles = 400_000
		opts.MeasureCycles = 800_000
	}
	if *workloads != "" {
		for _, name := range strings.Split(*workloads, ",") {
			w, ok := bump.WorkloadByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "figures: unknown workload %q\n", name)
				os.Exit(2)
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}
	f := bump.NewFigures(opts)

	gens := map[string]func() *stats.Table{
		"1": f.Fig1, "2": f.Fig2, "3": f.Fig3, "5": f.Fig5,
		"8": f.Fig8, "9": f.Fig9, "10": f.Fig10, "11": f.Fig11,
		"12": f.Fig12, "13": f.Fig13, "t1": f.Table1, "t4": f.Table4,
	}
	order := []string{"1", "2", "3", "5", "t1", "8", "9", "10", "11", "12", "13", "t4"}

	if *fig == "all" {
		for _, k := range order {
			fmt.Println(gens[k]())
		}
		return
	}
	g, ok := gens[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q (use 1,2,3,5,8,9,10,11,12,13,t1,t4,all)\n", *fig)
		os.Exit(2)
	}
	fmt.Println(g())
}

// scenarioFigure runs every mechanism under one scenario and prints the
// systems-comparison table (the scenario counterpart of Figs. 2/9/10).
func scenarioFigure(name string, seed int64, quick bool) error {
	cores := bump.DefaultConfig(bump.MechBuMP, bump.Workload{}).Cores
	sc, err := scenario.Resolve(name, cores)
	if err != nil {
		return err
	}
	t := stats.NewTable(fmt.Sprintf("Scenario %s: mechanism comparison", sc.Name),
		"mechanism", "row-hit", "IPC", "energy/access", "read cov", "write cov")
	for _, m := range bump.Mechanisms() {
		cfg := sim.DefaultScenarioConfig(m, sc)
		cfg.Seed = seed
		if quick {
			cfg.WarmupCycles = 400_000
			cfg.MeasureCycles = 800_000
		}
		res, err := bump.Run(cfg)
		if err != nil {
			return err
		}
		t.AddRow(m.String(),
			fmt.Sprintf("%.1f%%", 100*res.RowHitRatio()),
			fmt.Sprintf("%.2f", res.IPC()),
			fmt.Sprintf("%.1f nJ", res.EPATotal*1e9),
			fmt.Sprintf("%.1f%%", 100*res.ReadCoverage()),
			fmt.Sprintf("%.1f%%", 100*res.WriteCoverage()))
	}
	fmt.Println(t)
	return nil
}
