// Command bumpsim runs one full-system simulation and prints a detailed
// report: throughput, row-buffer behaviour, coverage, energy breakdown
// and the region-density profile.
//
// Usage:
//
//	bumpsim -workload web-search -mechanism bump
//	bumpsim -params                     # print Table II/III constants
//	bumpsim -workload data-serving -mechanism full-region -measure 4000000
//	bumpsim -trace trace.gob -mechanism bump   # replay a tracegen capture
//	bumpsim -scenario phase-swap -mechanism bump        # built-in scenario
//	bumpsim -scenario my-scenario.json -mechanism bump  # scenario file
//
// Checkpointing: -checkpoint-save writes the simulator's full state at
// the end of the warmup window; -checkpoint-load restores such a file
// into a structurally identical configuration and runs only the
// measurement window (measured parameters — -measure and the row-hit
// streak cap — may differ from the saving run):
//
//	bumpsim -workload web-search -mechanism bump -checkpoint-save warm.ckpt
//	bumpsim -workload web-search -mechanism bump -checkpoint-load warm.ckpt -measure 4000000
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"bump"
	"bump/internal/energy"
	"bump/internal/scenario"
	"bump/internal/sim"
	"bump/internal/stats"
	"bump/internal/trace"
)

func main() {
	var (
		workloadName = flag.String("workload", "web-search", "workload: data-serving, media-streaming, online-analytics, software-testing, web-search, web-serving")
		mechName     = flag.String("mechanism", "bump", "system: base-close, base-open, sms, vwq, sms+vwq, full-region, bump")
		seed         = flag.Int64("seed", 1, "deterministic seed")
		warmup       = flag.Uint64("warmup", 0, "warmup cycles (0 = default)")
		measure      = flag.Uint64("measure", 0, "measurement cycles (0 = default)")
		tracePath    = flag.String("trace", "", "replay a tracegen trace file on every core instead of the synthetic generators")
		scenarioName = flag.String("scenario", "", "multi-phase multi-tenant scenario driving the streams: a built-in name (consolidated, diurnal-shift, phase-swap, bursty-writer) or a JSON spec file; replaces -workload")
		params       = flag.Bool("params", false, "print the architectural (Table II) and energy (Table III) parameters and exit")
		ckptSave     = flag.String("checkpoint-save", "", "write a warmup-end checkpoint to this file")
		ckptLoad     = flag.String("checkpoint-load", "", "restore a checkpoint instead of simulating the warmup")
		workers      = flag.Int("workers", 0, "parallel simulation shards (0 or 1 = sequential; capped by GOMAXPROCS; results are byte-identical at any value)")
	)
	flag.Parse()

	if *params {
		printParams()
		return
	}

	// With -trace, the trace's recorded workload names the preset (for
	// identification and parameter validation); -workload is only the
	// fallback when the trace predates the preset catalogue.
	var tr *trace.Trace
	if *tracePath != "" {
		var err error
		tr, err = trace.ReadFile(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bumpsim: %v\n", err)
			os.Exit(1)
		}
		if tw, ok := bump.WorkloadByName(tr.Workload); ok {
			*workloadName = tw.Name
		}
	}

	m, ok := sim.MechanismByName(*mechName)
	if !ok {
		fmt.Fprintf(os.Stderr, "bumpsim: unknown mechanism %q\n", *mechName)
		os.Exit(2)
	}

	var cfg bump.Config
	if *scenarioName != "" {
		if tr != nil {
			fmt.Fprintln(os.Stderr, "bumpsim: -scenario cannot be combined with -trace")
			os.Exit(2)
		}
		sc, err := scenario.Resolve(*scenarioName, bump.DefaultConfig(m, bump.Workload{}).Cores)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bumpsim: %v\n", err)
			os.Exit(2)
		}
		cfg = sim.DefaultScenarioConfig(m, sc)
		fmt.Printf("scenario %s: %d tenants over %d cores\n", sc.Name, len(sc.Tenants), cfg.Cores)
	} else {
		w, ok := bump.WorkloadByName(*workloadName)
		if !ok {
			fmt.Fprintf(os.Stderr, "bumpsim: unknown workload %q\n", *workloadName)
			os.Exit(2)
		}
		cfg = bump.DefaultConfig(m, w)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	if *warmup > 0 {
		cfg.WarmupCycles = *warmup
	}
	if *measure > 0 {
		cfg.MeasureCycles = *measure
	}
	if tr != nil {
		streams, err := tr.Streams()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bumpsim: %v\n", err)
			os.Exit(1)
		}
		cfg.Streams = streams
		fmt.Printf("replaying %s (%d accesses, core %d, seed %d) on all %d cores\n",
			*tracePath, len(tr.Accesses), tr.Core, tr.Seed, cfg.Cores)
	}

	res, err := runWithCheckpoints(cfg, *ckptSave, *ckptLoad)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bumpsim: %v\n", err)
		os.Exit(1)
	}
	printReport(res)
}

// runWithCheckpoints executes cfg, optionally restoring warmed state
// from loadPath and/or saving the warmup-end state to savePath.
func runWithCheckpoints(cfg bump.Config, savePath, loadPath string) (bump.Result, error) {
	if savePath == "" && loadPath == "" {
		return bump.Run(cfg)
	}
	if savePath != "" && loadPath != "" {
		// A restored system is already past its warmup, so the save
		// hook would never fire; reject rather than silently writing
		// nothing.
		return bump.Result{}, fmt.Errorf("-checkpoint-save cannot be combined with -checkpoint-load (a restored run has no warmup end to checkpoint)")
	}
	s, err := sim.New(cfg)
	if err != nil {
		return bump.Result{}, err
	}
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return bump.Result{}, err
		}
		err = s.Restore(f)
		f.Close()
		if err != nil {
			return bump.Result{}, fmt.Errorf("restore %s: %w", loadPath, err)
		}
		fmt.Printf("restored checkpoint %s at cycle %d (skipping warmup)\n", loadPath, s.Engine().Now())
	}
	var hooks sim.Hooks
	if savePath != "" {
		hooks.AtWarmupEnd = func() error {
			var buf bytes.Buffer
			if err := s.Snapshot(&buf); err != nil {
				return err
			}
			if err := os.WriteFile(savePath, buf.Bytes(), 0o644); err != nil {
				return err
			}
			fmt.Printf("saved warmup-end checkpoint to %s (%d bytes, cycle %d)\n", savePath, buf.Len(), s.Engine().Now())
			return nil
		}
	}
	return s.RunWithHooks(hooks)
}

func printReport(r bump.Result) {
	fmt.Printf("system      %s on %s\n", r.Mechanism, r.Workload)
	fmt.Printf("window      %d cycles, %d instructions (IPC %.2f)\n",
		r.Cycles, r.Instructions, r.IPC())
	fmt.Println()

	t := stats.NewTable("DRAM", "metric", "value")
	t.AddRow("accesses", fmt.Sprintf("%d (%d rd / %d wr)", r.MemoryAccesses(), r.DRAM.ReadBursts, r.DRAM.WriteBursts))
	t.AddRow("row-buffer hit ratio", fmt.Sprintf("%.1f%%", 100*r.RowHitRatio()))
	t.AddRow("activations", fmt.Sprintf("%d", r.DRAM.Activations))
	t.AddRow("energy/access", fmt.Sprintf("%.1f nJ (ACT %.1f + BR/IO %.1f)", r.EPATotal*1e9, r.EPAActivation*1e9, r.EPABurstIO*1e9))
	t.AddRow("load latency", fmt.Sprintf("mean %.0f / P95 %.0f cycles (%d samples)", r.LoadLatencyMean, r.LoadLatencyP95, r.LoadLatencyN))
	fmt.Println(t)

	c := stats.NewTable("Prediction (Fig. 8 metrics)", "metric", "value")
	c.AddRow("read coverage", fmt.Sprintf("%.1f%%", 100*r.ReadCoverage()))
	c.AddRow("read overfetch", fmt.Sprintf("%.1f%%", 100*r.ReadOverfetch()))
	c.AddRow("write coverage", fmt.Sprintf("%.1f%%", 100*r.WriteCoverage()))
	c.AddRow("extra writebacks", fmt.Sprintf("%.1f%%", 100*r.ExtraWritebacks()))
	fmt.Println(c)

	p := stats.NewTable("Region profile (Figs. 3/5, Table I)", "metric", "value")
	p.AddRow("write traffic share", fmt.Sprintf("%.1f%%", 100*stats.Ratio(r.Profile.Writes, r.Profile.Accesses())))
	p.AddRow("store-triggered reads", fmt.Sprintf("%.1f%%", 100*stats.Ratio(r.Profile.StoreReads, r.Profile.Reads())))
	p.AddRow("high-density reads", fmt.Sprintf("%.1f%%", 100*r.Profile.HighDensityReadFraction()))
	p.AddRow("high-density writes", fmt.Sprintf("%.1f%%", 100*r.Profile.HighDensityWriteFraction()))
	p.AddRow("ideal row-hit ratio", fmt.Sprintf("%.1f%%", 100*r.Profile.IdealHitRatio()))
	p.AddRow("late-modified blocks", fmt.Sprintf("%.1f%%", 100*r.Profile.LateWriteFraction()))
	fmt.Println(p)

	e := stats.NewTable("Server energy (Fig. 1)", "component", "share")
	tot := r.Energy.Total()
	e.AddRow("cores", fmt.Sprintf("%.1f%%", 100*r.Energy.Cores()/tot))
	e.AddRow("LLC", fmt.Sprintf("%.1f%%", 100*r.Energy.LLC()/tot))
	e.AddRow("NOC", fmt.Sprintf("%.1f%%", 100*r.Energy.NOC()/tot))
	e.AddRow("memory controller", fmt.Sprintf("%.1f%%", 100*r.Energy.MCDynamic/tot))
	e.AddRow("memory (ACT)", fmt.Sprintf("%.1f%%", 100*r.Energy.DRAMActivation/tot))
	e.AddRow("memory (BR&IO)", fmt.Sprintf("%.1f%%", 100*r.Energy.BurstIO()/tot))
	e.AddRow("memory (BKG)", fmt.Sprintf("%.1f%%", 100*r.Energy.DRAMBackground/tot))
	fmt.Println(e)
}

func printParams() {
	cfg := sim.DefaultConfig(sim.BuMP, bump.WebSearch())
	t := stats.NewTable("Table II. Architectural parameters", "parameter", "value")
	t.AddRow("CMP size", fmt.Sprintf("%d cores, 3-way OoO, %d-entry window", cfg.Cores, cfg.WindowSize))
	t.AddRow("L1-D", fmt.Sprintf("%dKB %d-way, %d-cycle, %d MSHRs", cfg.L1Bytes>>10, cfg.L1Ways, cfg.L1LatencyCycles, cfg.L1MSHRs))
	t.AddRow("LLC", fmt.Sprintf("%dMB %d-way, %d-cycle", cfg.LLCBytes>>20, cfg.LLCWays, cfg.LLCLatencyCycles))
	t.AddRow("NOC", fmt.Sprintf("crossbar, %d cycles", cfg.NOCLatencyCycles))
	t.AddRow("memory", fmt.Sprintf("%d DDR3-1600 channels, %d ranks/ch, %d banks/rank, %dKB rows",
		cfg.DRAM.Channels, cfg.DRAM.RanksPerChannel, cfg.DRAM.BanksPerRank, cfg.DRAM.RowBytes>>10))
	tm := cfg.DRAM.Timing
	t.AddRow("timing", fmt.Sprintf("tCAS-tRCD-tRP-tRAS %d-%d-%d-%d, tRC %d, tWR %d, tWTR %d, tRTP %d, tRRD %d, tFAW %d",
		tm.TCAS, tm.TRCD, tm.TRP, tm.TRAS, tm.TRC, tm.TWR, tm.TWTR, tm.TRTP, tm.TRRD, tm.TFAW))
	t.AddRow("BuMP", fmt.Sprintf("1KB regions, threshold 8/16, RDTT %d+%d, BHT %d, DRT %d (%.1fKB total)",
		cfg.BuMP.TriggerEntries, cfg.BuMP.DensityEntries, cfg.BuMP.BHTEntries, cfg.BuMP.DRTEntries,
		float64(cfg.BuMP.StorageBits())/8/1024))
	fmt.Println(t)

	p := energy.DefaultParams()
	e := stats.NewTable("Table III. Power and energy parameters", "parameter", "value")
	e.AddRow("core", fmt.Sprintf("peak dynamic %.0fmW, leakage %.0fmW", p.CorePeakDynamicW*1e3, p.CoreLeakageW*1e3))
	e.AddRow("LLC", fmt.Sprintf("read %.2fnJ, write %.2fnJ, leakage %.0fmW", p.LLCReadJ*1e9, p.LLCWriteJ*1e9, p.LLCLeakageW*1e3))
	e.AddRow("NOC", fmt.Sprintf("leakage %.0fmW", p.NOCLeakageW*1e3))
	e.AddRow("mem ctrl", fmt.Sprintf("%.0fmW at %.1fGB/s", p.MCDynamicWAtRef*1e3, p.MCRefBandwidth/1e9))
	e.AddRow("DRAM activation", fmt.Sprintf("%.1fnJ", p.DRAMActivationJ*1e9))
	e.AddRow("DRAM read/write", fmt.Sprintf("%.1f/%.1fnJ + IO %.1f/%.1fnJ", p.DRAMReadJ*1e9, p.DRAMWriteJ*1e9, p.DRAMReadIOJ*1e9, p.DRAMWriteIOJ*1e9))
	e.AddRow("DRAM background", fmt.Sprintf("%.0fmW per rank x %d ranks", p.DRAMBackgroundW*1e3, p.Ranks))
	fmt.Println(e)
}
