// Command bumpctl coordinates a fleet of bumpd workers behind one
// endpoint. It speaks the same /v1 wire protocol as a single bumpd, so
// every existing client (sweep -server, curl scripts, service.Client)
// works unchanged — plus cluster-only endpoints for topology and whole-
// sweep batches.
//
// Jobs are routed by warm-affinity key: every point of a measured-
// parameter sweep shares one structural config digest, so the whole
// sweep lands on the same worker and its warm-checkpoint store (bumpd
// -warm) simulates the warmup exactly once. Workers are health-checked
// continuously: ejected after consecutive failures, re-probed with
// exponential backoff, readmitted when they recover, and rejected
// outright when their snapshot format version differs from this
// build's (warm checkpoints are not portable across versions). A job
// whose worker dies mid-run fails over to the next worker on the ring.
//
// With -data-dir the coordinator is durable: every accepted job ID,
// sweep and fleet-membership change is written to a write-ahead log
// before the client hears about it. A coordinator restarted on the same
// directory replays the log, re-answers every pre-crash job ID, and
// re-drives unfinished work to completion. Workers may also join by
// heartbeating (bumpd -coordinator), so -workers is optional.
//
// Usage:
//
//	bumpctl -worker http://host1:8344 -worker http://host2:8344
//	bumpctl -workers http://h1:8344,http://h2:8344,http://h3:8344 -addr :8343
//	bumpctl -data-dir /var/lib/bumpctl            # durable, self-registering fleet
//
// Endpoints (see internal/cluster):
//
//	POST   /v1/jobs             submit a job (affinity-routed, durable ID)
//	GET    /v1/jobs/{id}        poll a job (answered across restarts)
//	GET    /v1/jobs/{id}/events SSE progress stream (proxied)
//	GET    /v1/jobs/{id}/trace  stitched coordinator+worker trace JSON
//	DELETE /v1/jobs/{id}        cancel a job (proxied)
//	POST   /v1/batch            run a whole sweep; SSE per-point events
//	GET    /v1/batch/{id}       sweep progress/aggregate, survives restarts
//	GET    /v1/results/{hash}   cached result, fleet-wide lookup
//	GET    /v1/healthz          aggregated fleet health + WAL stats
//	GET    /v1/cluster          topology: per-worker state, lifecycle, stats
//	GET    /metrics             Prometheus text exposition
//	POST   /v1/cluster/register worker heartbeat self-registration
//	POST   /v1/cluster/cordon   stop new placements to a worker (reversible)
//	POST   /v1/cluster/uncordon restore placements to a cordoned worker
//	POST   /v1/cluster/drain    stop placements, eject once in-flight work ends
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bump/internal/cluster"
	"bump/internal/obs"
	"bump/internal/service"
	"bump/internal/wal"
	"bump/internal/wire"
)

func main() {
	var workerURLs []string
	var (
		addr      = flag.String("addr", ":8343", "listen address")
		workers   = flag.String("workers", "", "comma-separated bumpd worker base URLs")
		probe     = flag.Duration("probe-interval", 2*time.Second, "worker health-probe period")
		failAfter = flag.Int("fail-after", 3, "consecutive failures before a worker is ejected")
		backoff   = flag.Duration("backoff", time.Second, "initial readmission-probe backoff for a down worker (doubles per failure)")
		backoffMx = flag.Duration("backoff-max", 30*time.Second, "readmission-probe backoff ceiling")
		reqTO     = flag.Duration("request-timeout", 30*time.Second, "per-request timeout for worker calls")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		dataDir   = flag.String("data-dir", "", "WAL directory for durable coordinator state (empty = memory-only)")
		segBytes  = flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size (0 = 4MiB default)")
		noSync    = flag.Bool("wal-no-sync", false, "skip fsync on WAL appends (faster, loses the tail on power loss)")
		compactN  = flag.Uint64("compact-every", 0, "WAL appends between checkpoint compactions (0 = 512 default)")
		retainJ   = flag.Int("retain-jobs", 0, "terminal solo-job records retained for status queries (0 = 4096 default)")
		retainB   = flag.Int("retain-batches", 0, "completed sweeps retained with their points (0 = 64 default)")
		wireAddr  = flag.String("wire-addr", ":8346", "binary wire protocol listen address (empty = HTTP/JSON only)")
		jsonOnly  = flag.Bool("json-only", false, "talk HTTP/JSON to workers even when they advertise a wire listener")
		replicas  = flag.Int("replicas", 0, "workers kept holding each warm checkpoint and tree node (0 = 2: owner plus failover target)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON   = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Func("worker", "bumpd worker base URL (repeatable)", func(url string) error {
		workerURLs = append(workerURLs, url)
		return nil
	})
	flag.Parse()
	if *workers != "" {
		workerURLs = append(workerURLs, strings.Split(*workers, ",")...)
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		slog.Error("bumpctl: bad -log-level", "error", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if len(workerURLs) == 0 {
		slog.Info("no seed workers; fleet joins via heartbeat self-registration (bumpd -coordinator)")
	}

	// Observability: fleet topology, job states, WAL and aggregated
	// worker wire stats become scrapeable series; every tracked job
	// records routing/failover spans stitched with its worker's at
	// GET /v1/jobs/{id}/trace.
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(0)

	coord, err := cluster.New(context.Background(), cluster.Options{
		Workers: workerURLs,
		Registry: cluster.RegistryOptions{
			ProbeInterval:  *probe,
			FailAfter:      *failAfter,
			BackoffBase:    *backoff,
			BackoffMax:     *backoffMx,
			RequestTimeout: *reqTO,
			DisableWire:    *jsonOnly,
		},
		DataDir:       *dataDir,
		WAL:           wal.Options{SegmentBytes: *segBytes, NoSync: *noSync},
		CompactEvery:  *compactN,
		RetainJobs:    *retainJ,
		RetainBatches: *retainB,
		Replicas:      *replicas,
		Metrics:       metrics,
		Tracer:        tracer,
		Logger:        logger,
	})
	if err != nil {
		slog.Error("startup", "error", err)
		os.Exit(1)
	}
	top := coord.Topology()
	for _, w := range top.Workers {
		slog.Info("worker", "id", w.ID, "url", w.URL, "state", w.State, "lifecycle", w.Lifecycle)
	}
	slog.Info("fleet", "up", top.Up, "total", top.Total, "format_version", top.Version)
	if *dataDir != "" {
		h := coord.Health()
		slog.Info("durable state replayed", "dir", *dataDir,
			"records", h.WAL.ReplayedRecords, "jobs", h.WAL.ReplayedJobs,
			"recovered_inflight", h.WAL.RecoveredJobs)
	}

	// Binary wire listener: the coordinator serves the same hot surface
	// (submit, status, watch, result, batch) over persistent framed
	// connections; clients discover it via /v1/healthz wire_addr.
	var wireSrv *wire.Server
	if *wireAddr != "" {
		l, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			slog.Error("wire listen", "addr", *wireAddr, "error", err)
			os.Exit(1)
		}
		wireSrv = wire.Serve(l, service.NewWireHandler(coord))
		flagHost, _, herr := net.SplitHostPort(*wireAddr)
		if herr != nil {
			flagHost = ""
		}
		_, boundPort, _ := net.SplitHostPort(l.Addr().String())
		coord.SetWireAddr(net.JoinHostPort(flagHost, boundPort))
		slog.Info("wire protocol listening", "addr", l.Addr().String())
	}

	srv := &http.Server{
		Addr:        *addr,
		Handler:     logRequests(coord.Handler()),
		ReadTimeout: 30 * time.Second,
		// No WriteTimeout: proxied SSE streams stay open for a job's
		// lifetime; worker-side timeouts bound them instead.
	}

	errc := make(chan error, 1)
	go func() {
		slog.Info("listening", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		slog.Info("draining", "signal", sig.String(), "window", *drain)
	case err := <-errc:
		coord.Close()
		slog.Error("serve", "error", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		slog.Warn("shutdown", "error", err)
	}
	if wireSrv != nil {
		wireSrv.Close()
	}
	coord.Close()
	slog.Info("stopped")
}

// logRequests is a minimal structured access log; the trace header, when
// a client sent one, ties the request line to its job timeline.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		args := []any{"method", r.Method, "path", r.URL.Path,
			"duration", time.Since(start).Round(time.Millisecond)}
		if tid := r.Header.Get(service.TraceHeader); tid != "" {
			args = append(args, "trace", tid)
		}
		slog.Debug("request", args...)
	})
}
