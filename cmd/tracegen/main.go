// Command tracegen materialises a workload's per-core access stream to a
// gob-encoded file, or summarises one. Traces let downstream users feed
// the same streams into their own cache models or replay them against the
// standalone predictor.
//
// Usage:
//
//	tracegen -workload web-search -n 100000 -o trace.gob
//	tracegen -inspect trace.gob
//	tracegen -workload media-streaming -n 50000 -summary
package main

import (
	"flag"
	"fmt"
	"os"

	"bump"
	"bump/internal/mem"
	"bump/internal/stats"
	"bump/internal/trace"
)

func main() {
	var (
		workloadName = flag.String("workload", "web-search", "workload preset")
		n            = flag.Int("n", 100000, "accesses to generate")
		core         = flag.Int("core", 0, "core index (selects the per-core seed)")
		seed         = flag.Int64("seed", 1, "base seed")
		out          = flag.String("o", "", "output file (gob); empty = summary only")
		inspect      = flag.String("inspect", "", "summarise an existing trace file and exit")
		summary      = flag.Bool("summary", true, "print a trace summary")
	)
	flag.Parse()

	if *inspect != "" {
		tr, err := trace.ReadFile(*inspect)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %s core %d seed %d, %d accesses\n", tr.Workload, tr.Core, tr.Seed, len(tr.Accesses))
		summarise(tr.Accesses)
		return
	}

	w, ok := bump.WorkloadByName(*workloadName)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *workloadName))
	}
	tr, err := trace.Capture(w, *core, *seed, *n)
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		if err := trace.WriteFile(*out, tr); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d accesses to %s\n", len(tr.Accesses), *out)
	}
	if *summary {
		summarise(tr.Accesses)
	}
}

func summarise(accs []mem.Access) {
	var loads, stores, chained uint64
	var work uint64
	pcs := map[mem.PC]bool{}
	regions := map[mem.RegionAddr]int{}
	for _, a := range accs {
		if a.Type == mem.Store {
			stores++
		} else {
			loads++
		}
		if a.Chain != 0 {
			chained++
		}
		work += uint64(a.Work)
		pcs[a.PC] = true
		regions[a.Addr.Region(mem.DefaultRegionShift)]++
	}
	dense := 0
	blocks := map[mem.RegionAddr]map[mem.BlockAddr]bool{}
	for _, a := range accs {
		r := a.Addr.Region(mem.DefaultRegionShift)
		if blocks[r] == nil {
			blocks[r] = map[mem.BlockAddr]bool{}
		}
		blocks[r][a.Addr.Block()] = true
	}
	for _, bs := range blocks {
		if len(bs) >= 8 {
			dense++
		}
	}
	t := stats.NewTable("Trace summary", "metric", "value")
	t.AddRow("accesses", fmt.Sprintf("%d (%d loads / %d stores)", len(accs), loads, stores))
	t.AddRow("dependent (chained)", fmt.Sprintf("%.1f%%", 100*float64(chained)/float64(len(accs))))
	t.AddRow("mean work gap", fmt.Sprintf("%.1f instructions", float64(work)/float64(len(accs))))
	t.AddRow("distinct PCs", fmt.Sprintf("%d", len(pcs)))
	t.AddRow("distinct 1KB regions", fmt.Sprintf("%d", len(regions)))
	t.AddRow("high-density regions (>=8 blocks)", fmt.Sprintf("%d (%.1f%%)", dense, 100*float64(dense)/float64(len(blocks))))
	fmt.Println(t)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
