// Command bumpd serves BuMP simulations over HTTP: submit jobs, poll
// status, stream progress, and read cached results. Duplicate
// configurations are coalesced to one execution; completed results are
// served from an LRU cache without re-running.
//
// Usage:
//
//	bumpd                                  # listen on :8344
//	bumpd -addr :9000 -workers 8 -cache 512 -timeout 5m
//	bumpd -scenario peak.json -scenario canary.json   # register scenario files
//	bumpd -coordinator http://ctl:8343 -advertise http://host1:8344
//
// With -coordinator the worker heartbeats POST /v1/cluster/register
// every -heartbeat interval, joining the bumpctl fleet without being
// listed in its -workers flag — and rejoining automatically after
// either side restarts. -advertise is the base URL the coordinator
// should reach this worker at (required with -coordinator; the listen
// address alone does not name a host).
//
// Job specs may name a scenario instead of a workload — either one of
// the built-ins (consolidated, diurnal-shift, phase-swap, bursty-writer)
// or a spec registered at startup with -scenario — or carry a full
// inline spec under "scenario_spec". The resolved scenario is part of
// the config hash, so scenario jobs coalesce and cache like any other.
//
// Endpoints (see internal/service):
//
//	POST   /v1/jobs             submit a job spec
//	GET    /v1/jobs/{id}        poll a job
//	GET    /v1/jobs/{id}/events SSE progress stream
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/results/{hash}   cached result by config hash
//	GET    /v1/healthz          liveness + statistics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bump/internal/blob"
	"bump/internal/scenario"
	"bump/internal/service"
	"bump/internal/sim"
	"bump/internal/snapshot"
	"bump/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", ":8344", "listen address")
		workers  = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		simWork  = flag.Int("sim-workers", 0, "default parallel shards per run for jobs that don't set workers (0 = sequential; a resource knob — results and job identity are unchanged)")
		cacheSz  = flag.Int("cache", 256, "result-cache entries")
		retain   = flag.Int("retain", 4096, "terminal job records kept for status queries")
		timeout  = flag.Duration("timeout", 10*time.Minute, "default per-job timeout (0 = none)")
		interval = flag.Uint64("progress-interval", 0, "cycles between progress events (0 = 1/64 of each run)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		warm     = flag.Bool("warm", false, "share warmup-end checkpoints between jobs that differ only in measured parameters")
		warmSz   = flag.Int("warm-cache", 64, "warm-checkpoint cache entries (with -warm); fork sweeps hold a tree node per cut alongside the warmup roots, so keep this above cuts x structural variants")
		warmDir  = flag.String("warm-dir", "", "content-addressed checkpoint store directory (implies -warm; checkpoints survive restarts and transfer to peers)")
		warmDisk = flag.Int64("warm-disk-bytes", blob.DefaultCapacity, "checkpoint store size bound in bytes (with -warm-dir)")
		wireAddr = flag.String("wire-addr", ":8345", "binary wire protocol listen address (empty = HTTP/JSON only)")
		coord    = flag.String("coordinator", "", "bumpctl base URL to heartbeat-register with (self-registration; no static -workers entry needed)")
		adv      = flag.String("advertise", "", "base URL the coordinator reaches this worker at (required with -coordinator)")
		beat     = flag.Duration("heartbeat", 2*time.Second, "heartbeat interval (with -coordinator)")
	)
	flag.Func("scenario", "scenario spec file to register under its name (repeatable); jobs reference it via {\"scenario\": \"<name>\"}", func(path string) error {
		sc, err := scenario.Load(path)
		if err != nil {
			return err
		}
		if err := scenario.Register(sc); err != nil {
			return err
		}
		log.Printf("bumpd: registered scenario %q (%d tenants)", sc.Name, len(sc.Tenants))
		return nil
	})
	flag.Parse()

	var warmBackend sim.WarmBackend
	var blobStore *blob.Store
	if *warmDir != "" {
		bs, err := blob.Open(*warmDir, *warmDisk)
		if err != nil {
			log.Fatalf("bumpd: open checkpoint store: %v", err)
		}
		blobStore = bs
		warmBackend = bs
		st := bs.Stats()
		log.Printf("bumpd: checkpoint store %s (%d blobs, %d bytes, cap %d)", *warmDir, st.Blobs, st.Bytes, st.Capacity)
	}
	pool := service.NewPool(service.Options{
		Workers:          *workers,
		SimWorkers:       *simWork,
		CacheEntries:     *cacheSz,
		RetainJobs:       *retain,
		DefaultTimeout:   *timeout,
		ProgressInterval: *interval,
		WarmStarts:       *warm,
		WarmEntries:      *warmSz,
		WarmBackend:      warmBackend,
	})

	// Binary wire listener: the advertised address keeps the flag's host
	// (may be empty — clients fill it from the worker's base URL) with
	// the port the listener actually bound (":0" resolves here).
	var wireSrv *wire.Server
	advertisedWire := ""
	if *wireAddr != "" {
		l, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			log.Fatalf("bumpd: wire listen: %v", err)
		}
		wireSrv = wire.Serve(l, service.NewWireHandler(service.NewPoolWireBackend(pool)))
		flagHost, _, err := net.SplitHostPort(*wireAddr)
		if err != nil {
			flagHost = ""
		}
		_, boundPort, _ := net.SplitHostPort(l.Addr().String())
		advertisedWire = net.JoinHostPort(flagHost, boundPort)
		log.Printf("bumpd: wire protocol on %s (advertised %q)", l.Addr(), advertisedWire)
	}

	srv := &http.Server{
		Addr:        *addr,
		Handler:     logRequests(service.NewHandlerInfo(pool, service.ServerInfo{WireAddr: advertisedWire})),
		ReadTimeout: 30 * time.Second,
		// No WriteTimeout: SSE streams stay open for a job's lifetime;
		// the per-job timeout bounds them instead.
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("bumpd: listening on %s (workers=%d, cache=%d, timeout=%s)",
			*addr, pool.Stats().Workers, *cacheSz, *timeout)
		errc <- srv.ListenAndServe()
	}()

	// Heartbeat self-registration: beat until shutdown; the coordinator
	// admits us on the first beat and revives us after either side
	// restarts.
	beatCtx, stopBeat := context.WithCancel(context.Background())
	defer stopBeat()
	if *coord != "" {
		if *adv == "" {
			log.Fatal("bumpd: -coordinator requires -advertise (the base URL the coordinator reaches this worker at)")
		}
		go func() {
			registered := false
			// The heartbeat re-reads warm keys every beat, so freshly
			// simulated or transferred checkpoints are advertised to the
			// coordinator within one interval.
			service.NewClient(*coord).HeartbeatFunc(beatCtx,
				func() service.RegisterRequest {
					return service.RegisterRequest{
						URL:         *adv,
						Version:     snapshot.FormatVersion,
						WireAddr:    advertisedWire,
						Checkpoints: pool.WarmKeys(),
					}
				},
				*beat,
				func(resp service.RegisterResponse, err error) {
					switch {
					case err != nil:
						registered = false
						log.Printf("bumpd: heartbeat to %s failed: %v", *coord, err)
					case !registered:
						registered = true
						log.Printf("bumpd: registered with %s as %s [%s/%s]", *coord, resp.ID, resp.State, resp.Lifecycle)
					}
				})
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("bumpd: %s received, draining for up to %s", sig, *drain)
	case err := <-errc:
		pool.Close()
		log.Fatalf("bumpd: serve: %v", err)
	}

	// Graceful shutdown: stop accepting connections, give in-flight
	// requests the drain window, then cancel every remaining job.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("bumpd: shutdown: %v", err)
	}
	if wireSrv != nil {
		wireSrv.Close()
	}
	pool.Close()
	if blobStore != nil {
		blobStore.Close()
	}
	log.Printf("bumpd: stopped")
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("bumpd: %s %s (%s)", r.Method, r.URL.Path, time.Since(start).Round(time.Millisecond))
	})
}
