// Command bumpd serves BuMP simulations over HTTP: submit jobs, poll
// status, stream progress, and read cached results. Duplicate
// configurations are coalesced to one execution; completed results are
// served from an LRU cache without re-running.
//
// Usage:
//
//	bumpd                                  # listen on :8344
//	bumpd -addr :9000 -workers 8 -cache 512 -timeout 5m
//	bumpd -scenario peak.json -scenario canary.json   # register scenario files
//	bumpd -coordinator http://ctl:8343 -advertise http://host1:8344
//
// With -coordinator the worker heartbeats POST /v1/cluster/register
// every -heartbeat interval, joining the bumpctl fleet without being
// listed in its -workers flag — and rejoining automatically after
// either side restarts. -advertise is the base URL the coordinator
// should reach this worker at (required with -coordinator; the listen
// address alone does not name a host).
//
// Job specs may name a scenario instead of a workload — either one of
// the built-ins (consolidated, diurnal-shift, phase-swap, bursty-writer)
// or a spec registered at startup with -scenario — or carry a full
// inline spec under "scenario_spec". The resolved scenario is part of
// the config hash, so scenario jobs coalesce and cache like any other.
//
// Endpoints (see internal/service):
//
//	POST   /v1/jobs             submit a job spec
//	GET    /v1/jobs/{id}        poll a job
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /v1/jobs/{id}/trace  Chrome trace-event JSON for the job
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/results/{hash}   cached result by config hash
//	GET    /v1/healthz          liveness + statistics
//	GET    /metrics             Prometheus text exposition
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bump/internal/blob"
	"bump/internal/obs"
	"bump/internal/scenario"
	"bump/internal/service"
	"bump/internal/sim"
	"bump/internal/snapshot"
	"bump/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", ":8344", "listen address")
		workers  = flag.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
		simWork  = flag.Int("sim-workers", 0, "default parallel shards per run for jobs that don't set workers (0 = sequential; a resource knob — results and job identity are unchanged)")
		cacheSz  = flag.Int("cache", 256, "result-cache entries")
		retain   = flag.Int("retain", 4096, "terminal job records kept for status queries")
		timeout  = flag.Duration("timeout", 10*time.Minute, "default per-job timeout (0 = none)")
		interval = flag.Uint64("progress-interval", 0, "cycles between progress events (0 = 1/64 of each run)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		warm     = flag.Bool("warm", false, "share warmup-end checkpoints between jobs that differ only in measured parameters")
		warmSz   = flag.Int("warm-cache", 64, "warm-checkpoint cache entries (with -warm); fork sweeps hold a tree node per cut alongside the warmup roots, so keep this above cuts x structural variants")
		warmDir  = flag.String("warm-dir", "", "content-addressed checkpoint store directory (implies -warm; checkpoints survive restarts and transfer to peers)")
		warmDisk = flag.Int64("warm-disk-bytes", blob.DefaultCapacity, "checkpoint store size bound in bytes (with -warm-dir)")
		wireAddr = flag.String("wire-addr", ":8345", "binary wire protocol listen address (empty = HTTP/JSON only)")
		coord    = flag.String("coordinator", "", "bumpctl base URL to heartbeat-register with (self-registration; no static -workers entry needed)")
		adv      = flag.String("advertise", "", "base URL the coordinator reaches this worker at (required with -coordinator)")
		beat     = flag.Duration("heartbeat", 2*time.Second, "heartbeat interval (with -coordinator)")
		sample   = flag.Int("trace-sample", 0, "record fine-grained progress-slice spans for every Nth job (0 = coarse phases only)")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logJSON  = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Func("scenario", "scenario spec file to register under its name (repeatable); jobs reference it via {\"scenario\": \"<name>\"}", func(path string) error {
		sc, err := scenario.Load(path)
		if err != nil {
			return err
		}
		if err := scenario.Register(sc); err != nil {
			return err
		}
		slog.Info("registered scenario", "name", sc.Name, "tenants", len(sc.Tenants))
		return nil
	})
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		slog.Error("bumpd: bad -log-level", "error", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	// Observability: every pool/cache/warm/parallel statistic becomes a
	// scrapeable series, and every job records a span timeline served at
	// GET /v1/jobs/{id}/trace.
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(0)

	var warmBackend sim.WarmBackend
	var blobStore *blob.Store
	if *warmDir != "" {
		bs, err := blob.Open(*warmDir, *warmDisk)
		if err != nil {
			slog.Error("open checkpoint store", "dir", *warmDir, "error", err)
			os.Exit(1)
		}
		blobStore = bs
		warmBackend = bs
		st := bs.Stats()
		slog.Info("checkpoint store open", "dir", *warmDir,
			"blobs", st.Blobs, "bytes", st.Bytes, "capacity", st.Capacity)
	}
	pool := service.NewPool(service.Options{
		Workers:          *workers,
		SimWorkers:       *simWork,
		CacheEntries:     *cacheSz,
		RetainJobs:       *retain,
		DefaultTimeout:   *timeout,
		ProgressInterval: *interval,
		WarmStarts:       *warm,
		WarmEntries:      *warmSz,
		WarmBackend:      warmBackend,
		Metrics:          metrics,
		Tracer:           tracer,
		TraceSample:      *sample,
	})

	// Binary wire listener: the advertised address keeps the flag's host
	// (may be empty — clients fill it from the worker's base URL) with
	// the port the listener actually bound (":0" resolves here).
	var wireSrv *wire.Server
	advertisedWire := ""
	if *wireAddr != "" {
		l, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			slog.Error("wire listen", "addr", *wireAddr, "error", err)
			os.Exit(1)
		}
		wireSrv = wire.Serve(l, service.NewWireHandler(service.NewPoolWireBackend(pool)))
		flagHost, _, err := net.SplitHostPort(*wireAddr)
		if err != nil {
			flagHost = ""
		}
		_, boundPort, _ := net.SplitHostPort(l.Addr().String())
		advertisedWire = net.JoinHostPort(flagHost, boundPort)
		slog.Info("wire protocol listening", "addr", l.Addr().String(), "advertised", advertisedWire)
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: logRequests(service.NewHandlerInfo(pool, service.ServerInfo{
			WireAddr: advertisedWire,
			Metrics:  metrics,
			Tracer:   tracer,
		})),
		ReadTimeout: 30 * time.Second,
		// No WriteTimeout: SSE streams stay open for a job's lifetime;
		// the per-job timeout bounds them instead.
	}

	errc := make(chan error, 1)
	go func() {
		slog.Info("listening", "addr", *addr, "workers", pool.Stats().Workers,
			"cache", *cacheSz, "timeout", *timeout)
		errc <- srv.ListenAndServe()
	}()

	// Heartbeat self-registration: beat until shutdown; the coordinator
	// admits us on the first beat and revives us after either side
	// restarts.
	beatCtx, stopBeat := context.WithCancel(context.Background())
	defer stopBeat()
	if *coord != "" {
		if *adv == "" {
			slog.Error("-coordinator requires -advertise (the base URL the coordinator reaches this worker at)")
			os.Exit(2)
		}
		go func() {
			registered := false
			// The heartbeat re-reads warm keys every beat, so freshly
			// simulated or transferred checkpoints are advertised to the
			// coordinator within one interval.
			service.NewClient(*coord).HeartbeatFunc(beatCtx,
				func() service.RegisterRequest {
					return service.RegisterRequest{
						URL:         *adv,
						Version:     snapshot.FormatVersion,
						WireAddr:    advertisedWire,
						Checkpoints: pool.WarmKeys(),
					}
				},
				*beat,
				func(resp service.RegisterResponse, err error) {
					switch {
					case err != nil:
						registered = false
						slog.Warn("heartbeat failed", "coordinator", *coord, "error", err)
					case !registered:
						registered = true
						slog.Info("registered with coordinator", "coordinator", *coord,
							"id", resp.ID, "state", resp.State, "lifecycle", resp.Lifecycle)
					}
				})
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		slog.Info("draining", "signal", sig.String(), "window", *drain)
	case err := <-errc:
		pool.Close()
		slog.Error("serve", "error", err)
		os.Exit(1)
	}

	// Graceful shutdown: stop accepting connections, give in-flight
	// requests the drain window, then cancel every remaining job.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		slog.Warn("shutdown", "error", err)
	}
	if wireSrv != nil {
		wireSrv.Close()
	}
	pool.Close()
	if blobStore != nil {
		blobStore.Close()
	}
	slog.Info("stopped")
}

// logRequests is a minimal structured access log; the trace header, when
// a client sent one, ties the request line to its job timeline.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		args := []any{"method", r.Method, "path", r.URL.Path,
			"duration", time.Since(start).Round(time.Millisecond)}
		if tid := r.Header.Get(service.TraceHeader); tid != "" {
			args = append(args, "trace", tid)
		}
		slog.Debug("request", args...)
	})
}
