// Predictor: drive the BuMP predictor standalone — no simulator — the way
// an LLC would: feed it demand accesses and evictions, and act on its
// bulk-streaming and bulk-writeback decisions.
//
// The scenario mirrors the paper's Fig. 7 walk-through: a "rank metadata"
// loop (one PC) streams whole 1KB index pages, while a hash-walk (many
// PCs) touches single blocks. After one trained generation, the
// predictor streams every later index page on its first miss, and writes
// back modified pages in bulk on their first dirty eviction.
package main

import (
	"fmt"

	"bump"
)

const (
	rankerPC   = bump.PC(0x401000) // the index-page scan loop
	hashWalkPC = bump.PC(0x500000) // hash-bucket pointer chasing
)

// touchPage replays a demand scan of the 16 blocks of the 1KB page at
// base, as the LLC would observe it.
func touchPage(p *bump.Predictor, base bump.Addr, store bool) {
	for i := 0; i < 16; i++ {
		p.Touch(rankerPC, (base + bump.Addr(i*64)).Block(), store)
	}
}

func main() {
	p := bump.NewPredictor(bump.DefaultPredictorConfig())

	fmt.Println("== training generation ==")
	page0 := bump.Addr(0x10000)
	touchPage(p, page0, false)
	// First eviction in the page closes the region: high density, so the
	// (PC, offset) tuple enters the bulk history table.
	p.Evict(page0.Block(), false)
	st := p.Stats()
	fmt.Printf("high-density regions learned: %d\n", st.HighDensityRegions)

	fmt.Println("\n== prediction ==")
	for i, pc := range []bump.PC{rankerPC, hashWalkPC} {
		page := bump.Addr(0x40000 + i*0x800)
		if p.ReadMiss(pc, page.Block()) {
			fmt.Printf("miss by %#x at %#x -> STREAM the whole 1KB region\n", uint64(pc), uint64(page))
		} else {
			fmt.Printf("miss by %#x at %#x -> fetch one block\n", uint64(pc), uint64(page))
		}
	}

	fmt.Println("\n== bulk writeback ==")
	dirtyPage := bump.Addr(0x80000)
	touchPage(p, dirtyPage, true) // stores: the page is modified
	if p.Evict(dirtyPage.Block(), true) {
		fmt.Printf("first dirty eviction at %#x -> WRITE BACK the whole region\n", uint64(dirtyPage))
	}

	st = p.Stats()
	fmt.Printf("\npredictor stats: BHT hits %d, bulk reads %d, bulk writes %d\n",
		st.BHTHits, st.BulkReads, st.BulkWrites)
	cfg := bump.DefaultPredictorConfig()
	fmt.Printf("hardware budget: %.1fKB (paper: ~14KB)\n", float64(cfg.StorageBits())/8/1024)
}
