// Websearch: build a *custom* workload through the public API — an
// inverted-index server like the paper's Fig. 4 — and sweep it across all
// seven evaluated memory systems.
//
// The workload models the paper's description directly: a query first
// walks a hash bucket (pointer chasing over a vast term dictionary: fine
// grained, low density), then streams an index page of rank metadata
// (coarse grained, high density), occasionally appending to in-memory
// posting buffers (write bursts).
package main

import (
	"fmt"
	"log"

	"bump"
)

func invertedIndexWorkload() bump.Workload {
	w := bump.WebSearch() // start from the preset...
	// ...and specialise it: longer hash-bucket chains (a deeper term
	// dictionary), larger index pages (2-3KB of rank metadata), fewer
	// accessor functions (one ranker loop dominates).
	w.Name = "inverted-index"
	w.ChaseLenMin, w.ChaseLenMax = 4, 10
	w.ScanRegionsMin, w.ScanRegionsMax = 2, 3
	w.ScanPCs = 2
	w.ChasePCs = 64
	if err := w.Validate(); err != nil {
		log.Fatal(err)
	}
	return w
}

func main() {
	w := invertedIndexWorkload()
	fmt.Printf("workload: %s (custom, via the public API)\n\n", w.Name)
	fmt.Printf("%-12s %9s %9s %9s %10s\n", "system", "row-hit", "IPC", "nJ/acc", "coverage")

	var baseIPC, baseEPA float64
	for _, m := range bump.Mechanisms() {
		cfg := bump.DefaultConfig(m, w)
		res, err := bump.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if m == bump.MechBaseOpen {
			baseIPC, baseEPA = res.IPC(), res.EPATotal
		}
		fmt.Printf("%-12s %8.1f%% %9.2f %9.1f %9.1f%%\n",
			m, 100*res.RowHitRatio(), res.IPC(), res.EPATotal*1e9,
			100*res.ReadCoverage())
	}

	bumpRes, err := bump.Run(bump.DefaultConfig(bump.MechBuMP, w))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBuMP vs base-open: %+.1f%% throughput, %+.1f%% energy per access\n",
		100*(bumpRes.IPC()/baseIPC-1), 100*(bumpRes.EPATotal/baseEPA-1))
}
