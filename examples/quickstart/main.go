// Quickstart: simulate the paper's headline comparison on one workload —
// the open-row baseline versus BuMP — and print the metrics the paper
// leads with: DRAM row-buffer hit ratio, memory energy per access, and
// system throughput.
package main

import (
	"fmt"
	"log"

	"bump"
)

func main() {
	w := bump.WebSearch()

	baseCfg := bump.DefaultConfig(bump.MechBaseOpen, w)
	bumpCfg := bump.DefaultConfig(bump.MechBuMP, w)

	base, err := bump.Run(baseCfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bump.Run(bumpCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, 16-core CMP, 2x DDR3-1600\n\n", w.Name)
	fmt.Printf("%-28s %12s %12s\n", "metric", "base-open", "bump")
	fmt.Printf("%-28s %11.1f%% %11.1f%%\n", "row-buffer hit ratio",
		100*base.RowHitRatio(), 100*res.RowHitRatio())
	fmt.Printf("%-28s %10.1fnJ %10.1fnJ\n", "memory energy per access",
		base.EPATotal*1e9, res.EPATotal*1e9)
	fmt.Printf("%-28s %12.2f %12.2f\n", "throughput (aggregate IPC)",
		base.IPC(), res.IPC())
	fmt.Printf("\nBuMP: %+.1f%% energy per access, %+.1f%% throughput\n",
		100*(res.EPATotal/base.EPATotal-1),
		100*(res.IPC()/base.IPC()-1))
	fmt.Printf("read coverage %.1f%% (overfetch %.1f%%), write coverage %.1f%%\n",
		100*res.ReadCoverage(), 100*res.ReadOverfetch(), 100*res.WriteCoverage())
}
