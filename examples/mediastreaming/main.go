// Mediastreaming: the paper's most bulk-friendly workload — long
// sequential media-chunk reads copied into per-client packet buffers —
// plus a miniature design-space study (Fig. 11 style): how region size
// and density threshold trade coverage against overfetch.
package main

import (
	"fmt"
	"log"

	"bump"
)

func run(cfg bump.Config) bump.Result {
	res, err := bump.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	w := bump.MediaStreaming()

	base := run(bump.DefaultConfig(bump.MechBaseOpen, w))
	fmt.Printf("media streaming baseline: hit %.1f%%, %.1f nJ/access, IPC %.2f\n\n",
		100*base.RowHitRatio(), base.EPATotal*1e9, base.IPC())

	fmt.Printf("%-8s %-10s %9s %10s %10s %12s\n",
		"region", "threshold", "row-hit", "coverage", "overfetch", "energy-gain")
	for _, shift := range []uint{9, 10, 11} {
		blocks := uint(1) << (shift - 6)
		for _, pct := range []uint{25, 50, 100} {
			cfg := bump.DefaultConfig(bump.MechBuMP, w)
			cfg.BuMP.RegionShift = shift
			cfg.BuMP.DensityThreshold = blocks * pct / 100
			if cfg.BuMP.DensityThreshold == 0 {
				cfg.BuMP.DensityThreshold = 1
			}
			res := run(cfg)
			fmt.Printf("%-8s %-10s %8.1f%% %9.1f%% %9.1f%% %+11.1f%%\n",
				fmt.Sprintf("%dB", 1<<shift),
				fmt.Sprintf("%d/%d", cfg.BuMP.DensityThreshold, blocks),
				100*res.RowHitRatio(),
				100*res.ReadCoverage(),
				100*res.ReadOverfetch(),
				100*(1-res.EPATotal/base.EPATotal))
		}
	}
	fmt.Println("\n(the paper's chosen point is 1024B at 50% — Section IV.D)")
}
